package telemetry

import "fmt"

// Family is one of the ten model families of the paper's Table I.
type Family int

const (
	FamilyVGG Family = iota
	FamilyResNet
	FamilyInception
	FamilyUNet
	FamilyBert
	FamilyDistillBert
	FamilyDimeNet
	FamilySchNet
	FamilyPNA
	FamilyNNConv

	NumFamilies
)

var familyNames = [NumFamilies]string{
	"VGG", "ResNet", "Inception", "U-Net",
	"Bert", "DistillBert", "DimeNet", "SchNet", "PNA", "NNConv",
}

// Domain is the application area grouping of Table I.
type Domain int

const (
	DomainVision Domain = iota
	DomainNLP
	DomainGNN
)

func (d Domain) String() string {
	switch d {
	case DomainVision:
		return "Vision Networks"
	case DomainNLP:
		return "Language Models"
	case DomainGNN:
		return "Graph Neural Networks"
	}
	return "unknown"
}

func (f Family) String() string {
	if f < 0 || f >= NumFamilies {
		return "unknown"
	}
	return familyNames[f]
}

// Domain returns the Table I grouping for the family.
func (f Family) Domain() Domain {
	switch f {
	case FamilyBert, FamilyDistillBert:
		return DomainNLP
	case FamilyDimeNet, FamilySchNet, FamilyPNA, FamilyNNConv:
		return DomainGNN
	default:
		return DomainVision
	}
}

// Class is one of the 26 labelled model architectures (Tables VII-IX).
// The integer value is the y label used in the challenge datasets.
type Class int

const (
	VGG11 Class = iota
	VGG16
	VGG19
	Inception3
	Inception4
	ResNet50
	ResNet50V15
	ResNet101
	ResNet101V2
	ResNet152
	ResNet152V2
	U3x32
	U3x64
	U3x128
	U4x32
	U4x64
	U4x128
	U5x32
	U5x64
	U5x128
	Bert
	DistillBert
	DimeNet
	SchNet
	PNA
	NNConv

	NumClasses // = 26
)

type classInfo struct {
	name   string
	family Family
	// jobCount is the per-class job count from the paper's appendix,
	// reconciled per DESIGN.md so the total is exactly 3,430.
	jobCount int
}

var classTable = [NumClasses]classInfo{
	VGG11:       {"VGG11", FamilyVGG, 185},
	VGG16:       {"VGG16", FamilyVGG, 176},
	VGG19:       {"VGG19", FamilyVGG, 199},
	Inception3:  {"Inception3", FamilyInception, 241},
	Inception4:  {"Inception4", FamilyInception, 243},
	ResNet50:    {"ResNet50", FamilyResNet, 111},
	ResNet50V15: {"ResNet50_v1.5", FamilyResNet, 91},
	ResNet101:   {"ResNet101", FamilyResNet, 77},
	ResNet101V2: {"ResNet101_v2", FamilyResNet, 54},
	ResNet152:   {"ResNet152", FamilyResNet, 76},
	ResNet152V2: {"ResNet152_v2", FamilyResNet, 54},
	U3x32:       {"U3-32", FamilyUNet, 165},
	U3x64:       {"U3-64", FamilyUNet, 159},
	U3x128:      {"U3-128", FamilyUNet, 165},
	U4x32:       {"U4-32", FamilyUNet, 163},
	U4x64:       {"U4-64", FamilyUNet, 158},
	U4x128:      {"U4-128", FamilyUNet, 157},
	U5x32:       {"U5-32", FamilyUNet, 158},
	U5x64:       {"U5-64", FamilyUNet, 158},
	U5x128:      {"U5-128", FamilyUNet, 148},
	Bert:        {"Bert", FamilyBert, 189},
	DistillBert: {"DistillBert", FamilyDistillBert, 172},
	DimeNet:     {"DimeNet", FamilyDimeNet, 33},
	SchNet:      {"SchNet", FamilySchNet, 39},
	PNA:         {"PNA", FamilyPNA, 27},
	NNConv:      {"NNConv", FamilyNNConv, 32},
}

// TotalJobs is the number of labelled jobs in the full-scale dataset (the
// paper's 3,430).
const TotalJobs = 3430

// Name returns the model name exactly as the challenge's model_train /
// model_test arrays spell it.
func (c Class) Name() string {
	if c < 0 || c >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classTable[c].name
}

func (c Class) String() string { return c.Name() }

// Family returns the model family of the class.
func (c Class) Family() Family {
	if c < 0 || c >= NumClasses {
		return -1
	}
	return classTable[c].family
}

// JobCount returns the number of labelled jobs of this class in the
// full-scale dataset.
func (c Class) JobCount() int {
	if c < 0 || c >= NumClasses {
		return 0
	}
	return classTable[c].jobCount
}

// AllClasses lists the 26 classes in label order.
func AllClasses() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// ClassByName resolves a model name (as spelled in the challenge files) to
// its Class, reporting ok=false for unknown names.
func ClassByName(name string) (Class, bool) {
	for i, info := range classTable {
		if info.name == name {
			return Class(i), true
		}
	}
	return -1, false
}

// FamilyJobCount sums the job counts of all classes in family f
// (the paper's Table I rows).
func FamilyJobCount(f Family) int {
	total := 0
	for _, info := range classTable {
		if info.family == f {
			total += info.jobCount
		}
	}
	return total
}
