package telemetry

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestClassMetadata(t *testing.T) {
	if NumClasses != 26 {
		t.Fatalf("NumClasses = %d, want 26", NumClasses)
	}
	total := 0
	for _, c := range AllClasses() {
		if c.Name() == "" {
			t.Errorf("class %d has no name", c)
		}
		if c.JobCount() <= 0 {
			t.Errorf("class %s has job count %d", c, c.JobCount())
		}
		total += c.JobCount()
	}
	if total != TotalJobs {
		t.Errorf("total job count = %d, want %d (paper's 3,430)", total, TotalJobs)
	}
}

func TestClassByName(t *testing.T) {
	for _, c := range AllClasses() {
		got, ok := ClassByName(c.Name())
		if !ok || got != c {
			t.Errorf("ClassByName(%q) = %v, %v", c.Name(), got, ok)
		}
	}
	if _, ok := ClassByName("GPT-7"); ok {
		t.Error("unknown class should not resolve")
	}
}

func TestFamilyTotalsMatchTableI(t *testing.T) {
	// Family totals from the reconciled Table I (DESIGN.md).
	want := map[Family]int{
		FamilyVGG:         560,
		FamilyInception:   484,
		FamilyResNet:      463,
		FamilyUNet:        1431,
		FamilyBert:        189,
		FamilyDistillBert: 172,
		FamilyDimeNet:     33,
		FamilySchNet:      39,
		FamilyPNA:         27,
		FamilyNNConv:      32,
	}
	for f, w := range want {
		if got := FamilyJobCount(f); got != w {
			t.Errorf("FamilyJobCount(%s) = %d, want %d", f, got, w)
		}
	}
}

func TestFamilyDomains(t *testing.T) {
	if FamilyVGG.Domain() != DomainVision || FamilyBert.Domain() != DomainNLP ||
		FamilySchNet.Domain() != DomainGNN {
		t.Error("family domain mapping wrong")
	}
}

func TestSensorMetadata(t *testing.T) {
	if NumGPUSensors != 7 || NumCPUSensors != 8 {
		t.Fatalf("sensor counts %d/%d", NumGPUSensors, NumCPUSensors)
	}
	if UtilizationGPUPct.String() != "utilization_gpu_pct" {
		t.Errorf("sensor 0 = %q", UtilizationGPUPct.String())
	}
	if PowerDrawW != 6 {
		t.Errorf("power must be sensor 6 per Table III ordering, got %d", PowerDrawW)
	}
	for s := GPUSensor(0); s < NumGPUSensors; s++ {
		if s.Description() == "" {
			t.Errorf("GPU sensor %d has no description", s)
		}
	}
	for s := CPUSensor(0); s < NumCPUSensors; s++ {
		if s.Description() == "" {
			t.Errorf("CPU sensor %d has no description", s)
		}
	}
}

func TestSimulatorJobPopulation(t *testing.T) {
	sim, err := NewSimulator(Config{Seed: 1, Scale: 1.0, GapRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	jobs := sim.Jobs()
	if len(jobs) != TotalJobs {
		t.Fatalf("full scale generated %d jobs, want %d", len(jobs), TotalJobs)
	}
	series := sim.TotalGPUSeries()
	if series < 16000 || series > 21000 {
		t.Errorf("total GPU series = %d, want ≈18k (paper: over 17,000)", series)
	}
	perClass := map[Class]int{}
	for _, j := range jobs {
		perClass[j.Class]++
		if j.NumGPUs < 1 || j.NumGPUs > 16 {
			t.Errorf("job %d has %d GPUs", j.ID, j.NumGPUs)
		}
		if j.NumNodes != (j.NumGPUs+1)/2 {
			t.Errorf("job %d: %d GPUs on %d nodes", j.ID, j.NumGPUs, j.NumNodes)
		}
		if j.Duration < 40 || j.Duration > 86400 {
			t.Errorf("job %d duration %v out of range", j.ID, j.Duration)
		}
	}
	for _, c := range AllClasses() {
		if perClass[c] != c.JobCount() {
			t.Errorf("class %s: %d jobs, want %d", c, perClass[c], c.JobCount())
		}
	}
}

func TestSimulatorScale(t *testing.T) {
	sim, err := NewSimulator(Config{Seed: 1, Scale: 0.1, GapRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := len(sim.Jobs())
	if n < 330 || n > 360 {
		t.Errorf("scale 0.1 gave %d jobs", n)
	}
	// Every class must still be present.
	seen := map[Class]bool{}
	for _, j := range sim.Jobs() {
		seen[j.Class] = true
	}
	if len(seen) != int(NumClasses) {
		t.Errorf("scale 0.1 kept only %d classes", len(seen))
	}
}

func TestSimulatorBadScale(t *testing.T) {
	if _, err := NewSimulator(Config{Scale: 0}); err == nil {
		t.Error("zero scale should fail")
	}
	if _, err := NewSimulator(Config{Scale: 1.5}); err == nil {
		t.Error("scale > 1 should fail")
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Scale: 0.05, GapRate: 1}
	s1, _ := NewSimulator(cfg)
	s2, _ := NewSimulator(cfg)
	j1, j2 := s1.Jobs()[10], s2.Jobs()[10]
	if j1.Seed != j2.Seed || j1.Duration != j2.Duration {
		t.Fatal("job population not deterministic")
	}
	w1, err := j1.GPUWindow(0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := j2.GPUWindow(0, 0, 100)
	if !mat.Equal(w1, w2, 0) {
		t.Error("windows not deterministic")
	}
}

func TestWindowOverlapConsistency(t *testing.T) {
	// Two overlapping windows must agree exactly on utilization, memory and
	// power (pure functions of the sample index). Temperatures integrate
	// from a phase estimate so they may differ slightly; require closeness.
	sim, _ := NewSimulator(Config{Seed: 7, Scale: 0.02, GapRate: 1})
	var job *Job
	for _, j := range sim.Jobs() {
		if j.Duration > 200 {
			job = j
			break
		}
	}
	if job == nil {
		t.Skip("no long job at this scale")
	}
	a, err := job.GPUWindow(0, 90, 180) // samples 810..989
	if err != nil {
		t.Fatal(err)
	}
	b, err := job.GPUWindow(0, 100, 90) // samples 900..989
	if err != nil {
		t.Fatal(err)
	}
	offset := 90 // b starts 10 s = 90 samples into a
	for i := 0; i < 90; i++ {
		for _, s := range []GPUSensor{UtilizationGPUPct, UtilizationMemoryPct, MemoryFreeMiB, MemoryUsedMiB, PowerDrawW} {
			if a.At(offset+i, int(s)) != b.At(i, int(s)) {
				t.Fatalf("sensor %v sample %d: %v vs %v", s, i, a.At(offset+i, int(s)), b.At(i, int(s)))
			}
		}
		for _, s := range []GPUSensor{TemperatureGPU, TemperatureMemory} {
			if math.Abs(a.At(offset+i, int(s))-b.At(i, int(s))) > 6 {
				t.Fatalf("temperature sensor %v sample %d: %v vs %v", s, i, a.At(offset+i, int(s)), b.At(i, int(s)))
			}
		}
	}
}

func TestWindowBounds(t *testing.T) {
	sim, _ := NewSimulator(Config{Seed: 3, Scale: 0.02, GapRate: 1})
	j := sim.Jobs()[0]
	if _, err := j.GPUWindow(-1, 0, 10); err == nil {
		t.Error("negative GPU index should fail")
	}
	if _, err := j.GPUWindow(j.NumGPUs, 0, 10); err == nil {
		t.Error("GPU index out of range should fail")
	}
	if _, err := j.GPUWindow(0, -5, 10); err == nil {
		t.Error("negative t0 should fail")
	}
	if _, err := j.GPUWindow(0, j.Duration-0.5, 540); err == nil {
		t.Error("window past end should fail")
	}
}

// TestSensorPhysicalRanges property-checks that every sensor stays within
// physical limits across random jobs and window positions.
func TestSensorPhysicalRanges(t *testing.T) {
	sim, _ := NewSimulator(Config{Seed: 11, Scale: 0.05, GapRate: 1})
	jobs := sim.Jobs()
	f := func(jobIdx, gpuPick uint8, frac float64) bool {
		j := jobs[int(jobIdx)%len(jobs)]
		gpu := int(gpuPick) % j.NumGPUs
		frac = math.Abs(frac)
		frac -= math.Floor(frac)
		maxStart := j.Duration - 60
		if maxStart < 0 {
			return true
		}
		w, err := j.GPUWindow(gpu, frac*maxStart, 540)
		if err != nil {
			return false
		}
		for i := 0; i < w.Rows; i++ {
			row := w.Row(i)
			if row[UtilizationGPUPct] < 0 || row[UtilizationGPUPct] > 100 {
				return false
			}
			if row[UtilizationMemoryPct] < 0 || row[UtilizationMemoryPct] > 100 {
				return false
			}
			if row[MemoryUsedMiB] < 0 || row[MemoryUsedMiB] > GPUMemoryTotalMiB {
				return false
			}
			if math.Abs(row[MemoryFreeMiB]+row[MemoryUsedMiB]-GPUMemoryTotalMiB) > 1.0 {
				return false
			}
			if row[TemperatureGPU] < 15 || row[TemperatureGPU] > 105 {
				return false
			}
			if row[PowerDrawW] < 20 || row[PowerDrawW] > 320 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStartupPhaseIsGeneric(t *testing.T) {
	// Mean |utilization| during the first half of startup must be near zero
	// for every class — that is the mechanism behind the paper's start-window
	// accuracy drop.
	sim, _ := NewSimulator(Config{Seed: 5, Scale: 0.05, GapRate: 1})
	for _, j := range sim.Jobs()[:50] {
		n := int(j.Startup * 0.4 / GPUSampleDT)
		if n < 30 {
			continue
		}
		w, err := j.GPUWindow(0, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		util := mat.Mean(w.Col(int(UtilizationGPUPct)))
		if util > 15 {
			t.Errorf("job %d (%s): startup mean util %v, want near idle", j.ID, j.Class, util)
		}
	}
}

func TestDisableStartup(t *testing.T) {
	sim, _ := NewSimulator(Config{Seed: 5, Scale: 0.02, DisableStartup: true, GapRate: 1})
	for _, j := range sim.Jobs() {
		if j.Startup != 0 {
			t.Fatalf("job %d has startup %v with DisableStartup", j.ID, j.Startup)
		}
	}
}

func TestTrainingUtilizationSeparatesFamilies(t *testing.T) {
	// Steady-state GPU utilization must be high for VGG and low for NNConv —
	// the coarse class signal.
	sim, _ := NewSimulator(Config{Seed: 9, Scale: 0.3, GapRate: 1})
	var vgg, gnn *Job
	for _, j := range sim.Jobs() {
		if j.Class == VGG16 && j.Duration > 400 && vgg == nil {
			vgg = j
		}
		if j.Class == NNConv && j.Duration > 400 && gnn == nil {
			gnn = j
		}
	}
	if vgg == nil || gnn == nil {
		t.Skip("populations too small at this scale")
	}
	wv, _ := vgg.GPUWindow(0, vgg.Duration/2, 540)
	wg, _ := gnn.GPUWindow(0, gnn.Duration/2, 540)
	mv := mat.Mean(wv.Col(int(UtilizationGPUPct)))
	mg := mat.Mean(wg.Col(int(UtilizationGPUPct)))
	if mv < mg+20 {
		t.Errorf("VGG16 mean util %v should clearly exceed NNConv %v", mv, mg)
	}
}

func TestThermalCoupling(t *testing.T) {
	// GPU temperature must correlate positively with power draw in steady
	// state training.
	sim, _ := NewSimulator(Config{Seed: 13, Scale: 0.05, GapRate: 1})
	var j *Job
	for _, c := range sim.Jobs() {
		if c.Duration > 600 {
			j = c
			break
		}
	}
	if j == nil {
		t.Skip("no long job")
	}
	w, _ := j.GPUWindow(0, 300, 540)
	power := w.Col(int(PowerDrawW))
	temp := w.Col(int(TemperatureGPU))
	meanP, meanT := mat.Mean(power), mat.Mean(temp)
	if meanP > 150 && meanT < 45 {
		t.Errorf("high power %v with low temperature %v: thermal model broken", meanP, meanT)
	}
}

func TestHasGapDeterministic(t *testing.T) {
	sim, _ := NewSimulator(Config{Seed: 21, Scale: 0.02, GapRate: 1})
	j := sim.Jobs()[0]
	for i := 0; i < 5; i++ {
		if j.HasGap(0, 100, 160) != j.HasGap(0, 100, 160) {
			t.Fatal("HasGap not deterministic")
		}
	}
	if sim.HasGap(j, 0, 100, 160) && sim.Config().GapRate == 0 {
		t.Error("gap with zero rate")
	}
}

func TestGapRateZeroDisables(t *testing.T) {
	sim, _ := NewSimulator(Config{Seed: 21, Scale: 0.05, GapRate: 0})
	for _, j := range sim.Jobs() {
		if sim.HasGap(j, 0, 0, j.Duration) {
			t.Fatal("GapRate 0 must disable gaps")
		}
	}
}

func TestCPUSeries(t *testing.T) {
	sim, _ := NewSimulator(Config{Seed: 17, Scale: 0.02, GapRate: 1})
	var j *Job
	for _, c := range sim.Jobs() {
		if c.Duration > 300 {
			j = c
			break
		}
	}
	if j == nil {
		t.Skip("no long job")
	}
	cs, err := j.CPUSeries(0)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Cols != int(NumCPUSensors) {
		t.Fatalf("CPU series has %d columns", cs.Cols)
	}
	wantLen := int(j.Duration / CPUSampleDT)
	if cs.Rows != wantLen {
		t.Errorf("CPU series length %d, want %d", cs.Rows, wantLen)
	}
	// GPU and CPU series lengths must differ (different sampling rates).
	gpuLen := int(j.Duration / GPUSampleDT)
	if cs.Rows == gpuLen {
		t.Error("CPU and GPU series should have different lengths")
	}
	// Cumulative counters must be non-decreasing.
	for _, sensor := range []CPUSensor{CPUTime, Pages, ReadMB, WriteMB} {
		col := cs.Col(int(sensor))
		for i := 1; i < len(col); i++ {
			if col[i] < col[i-1]-1e-9 {
				t.Errorf("%v decreases at %d: %v -> %v", sensor, i, col[i-1], col[i])
				break
			}
		}
	}
	if _, err := j.CPUSeries(j.NumNodes); err == nil {
		t.Error("node index out of range should fail")
	}
}

func TestSchedulerLog(t *testing.T) {
	sim, _ := NewSimulator(Config{Seed: 19, Scale: 0.02, GapRate: 1})
	log := sim.SchedulerLog()
	if len(log) != len(sim.Jobs()) {
		t.Fatalf("log has %d entries for %d jobs", len(log), len(sim.Jobs()))
	}
	prevSubmit := -1.0
	for i, e := range log {
		if e.StartSec < e.SubmitSec || e.EndSec < e.StartSec {
			t.Errorf("entry %d has non-causal times: %+v", i, e)
		}
		if e.SubmitSec < prevSubmit {
			t.Errorf("submissions out of order at %d", i)
		}
		prevSubmit = e.SubmitSec
		if e.ModelName == "" || e.UserHash == "" {
			t.Errorf("entry %d missing fields: %+v", i, e)
		}
	}
}

func TestHashRandStatistics(t *testing.T) {
	// hashNormal must be approximately standard normal.
	const n = 20000
	var sum, sumSq float64
	stream := streamSeed(123, 0, 0)
	for i := int64(0); i < n; i++ {
		v := hashNormal(stream, i)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("hashNormal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("hashNormal variance = %v", variance)
	}
}

func TestHashUniformRange(t *testing.T) {
	f := func(stream uint64, idx int64) bool {
		u := hashUniform(stream, idx)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProfileJitterBounds(t *testing.T) {
	// Jitter must preserve physical ranges for every class.
	sim, _ := NewSimulator(Config{Seed: 29, Scale: 0.1, GapRate: 1})
	for _, j := range sim.Jobs() {
		p := j.prof
		if p.Duty < 0.2 || p.Duty > 0.97 {
			t.Errorf("job %d duty %v", j.ID, p.Duty)
		}
		if p.UtilHigh < 5 || p.UtilHigh > 100 {
			t.Errorf("job %d utilHigh %v", j.ID, p.UtilHigh)
		}
		if p.MemBaseMiB+p.MemActMiB+p.MemSawMiB > GPUMemoryTotalMiB {
			t.Errorf("job %d (%s) memory budget exceeds V100: %v", j.ID, j.Class,
				p.MemBaseMiB+p.MemActMiB+p.MemSawMiB)
		}
		if p.StepTime <= 0 || p.EpochTime <= 0 {
			t.Errorf("job %d non-positive times", j.ID)
		}
	}
}
