package telemetry

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// CPUSeries materialises the per-node Slurm-profiling time series for one
// node of a job, covering the whole job duration at CPUSampleDT resolution.
// The result is an n×8 matrix whose columns follow the Table II order
// (CPUFrequency, CPUTime, CPUUtilization, RSS, VMSize, Pages, ReadMB,
// WriteMB). CPUTime, Pages, ReadMB and WriteMB are cumulative counters, as
// in the real dataset.
//
// CPU series intentionally have different lengths from GPU series for the
// same job — the paper highlights this misalignment as one of the
// challenge's difficulties.
func (j *Job) CPUSeries(node int) (*mat.Matrix, error) {
	if node < 0 || node >= j.NumNodes {
		return nil, fmt.Errorf("telemetry: job %d has %d nodes, requested %d", j.ID, j.NumNodes, node)
	}
	n := int(j.Duration / CPUSampleDT)
	if n < 1 {
		n = 1
	}
	out := mat.New(n, int(NumCPUSensors))
	p := j.prof

	stream := streamSeed(j.Seed, 1000+node, chUtil)
	freqStream := streamSeed(j.Seed, 1000+node, chPower)

	// Cumulative counters.
	var cpuTime, pages, readMB, writeMB float64
	stepsPerSample := CPUSampleDT / p.StepTime

	for i := 0; i < n; i++ {
		t := float64(i) * CPUSampleDT
		ph, _ := j.phaseAt(t)

		var util, rss float64
		switch ph {
		case phaseStartup:
			util = clamp(85+8*hashNormal(stream, int64(i)), 0, 100)
			rss = 2000 + (t/math.Max(j.Startup, 1))*float64(30000)
			readMB += 250 * CPUSampleDT / math.Max(j.Startup, 1) * 60 // dataset staging
		case phaseTrain:
			// The host-side pipeline couples to GPU stalls: while the GPU
			// starves, the dataloader works flat out to refill its queue.
			// This anti-correlation between CPU and GPU utilization is the
			// cross-device covariance the paper's §IV-B importance analysis
			// singles out.
			stallFrac := j.stallFraction(node*GPUsPerNode, t, CPUSampleDT)
			util = clamp(p.CPUUtilPct+28*stallFrac+6*hashNormal(stream, int64(i)), 0, 100)
			rss = 34000 + 2500*hashNormal(streamSeed(j.Seed, 1000+node, chMem), int64(i))*0.1
			readMB += p.ReadMBPerStep * stepsPerSample
		case phaseValidation:
			util = clamp(p.CPUUtilPct*0.7+5*hashNormal(stream, int64(i)), 0, 100)
			rss = 34000
			readMB += p.ReadMBPerStep * stepsPerSample * 0.5
		case phaseCheckpoint:
			util = clamp(25+5*hashNormal(stream, int64(i)), 0, 100)
			rss = 34000
			writeMB += 800 * CPUSampleDT / math.Max(p.CkptTime, 1)
		}

		// Turbo behaviour: lighter load boosts clocks.
		freq := 3.9 - 1.2*util/100 + 0.05*hashNormal(freqStream, int64(i))
		cpuTime += util / 100 * CPUSampleDT * CoresPerNode
		pages += util * 120 * CPUSampleDT / 100

		row := out.Row(i)
		row[CPUFrequency] = math.Round(freq * 1000) // MHz
		row[CPUTime] = math.Round(cpuTime*100) / 100
		row[CPUUtilization] = math.Round(util*10) / 10
		row[RSS] = math.Round(clamp(rss, 0, NodeRAMMiB))
		row[VMSize] = math.Round(clamp(rss*2.4+8000, 0, 2*NodeRAMMiB))
		row[Pages] = math.Round(pages)
		row[ReadMB] = math.Round(readMB*100) / 100
		row[WriteMB] = math.Round(writeMB*100) / 100
	}
	return out, nil
}
