// Package telemetry simulates the MIT Supercloud labelled dataset: per-GPU
// DCGM time series (Table III of the paper), per-node CPU/Slurm-profiling
// time series (Table II), and a scheduler log, for 3,430 deep-learning
// training jobs drawn from 26 model classes.
//
// The real labelled dataset is distribution-gated (https://dcc.mit.edu), so
// this package is the substitution mandated by the reproduction plan: it
// reproduces the mechanisms that make the classification task non-trivial —
// class signal carried by the joint dynamics of correlated sensors, a
// class-agnostic startup phase that degrades "first 60 seconds" windows,
// log-normal job durations, per-GPU labelling repeated across multi-GPU
// jobs, and occasional telemetry gaps.
//
// All generation is deterministic given the Config seed, and window
// extraction is a pure function of (job, gpu, start-time) so overlapping
// windows agree on their overlap.
package telemetry

// GPUSensor indexes the seven DCGM GPU metrics of the paper's Table III.
// The challenge datasets order the last tensor dimension exactly this way.
type GPUSensor int

const (
	UtilizationGPUPct GPUSensor = iota
	UtilizationMemoryPct
	MemoryFreeMiB
	MemoryUsedMiB
	TemperatureGPU
	TemperatureMemory
	PowerDrawW

	NumGPUSensors // = 7
)

var gpuSensorNames = [NumGPUSensors]string{
	"utilization_gpu_pct",
	"utilization_memory_pct",
	"memory_free_MiB",
	"memory_used_MiB",
	"temperature_gpu",
	"temperature_memory",
	"power_draw_W",
}

var gpuSensorDescriptions = [NumGPUSensors]string{
	"Percentage of GPU utilized",
	"Percentage of memory utilized",
	"Available GPU memory",
	"GPU memory in use",
	"GPU temperature",
	"GPU Memory temperature",
	"Power drawn",
}

// String returns the DCGM column name used by the challenge files.
func (s GPUSensor) String() string {
	if s < 0 || s >= NumGPUSensors {
		return "unknown_gpu_sensor"
	}
	return gpuSensorNames[s]
}

// Description returns the paper's Table III description.
func (s GPUSensor) Description() string {
	if s < 0 || s >= NumGPUSensors {
		return ""
	}
	return gpuSensorDescriptions[s]
}

// CPUSensor indexes the CPU-side metrics of the paper's Table II.
type CPUSensor int

const (
	CPUFrequency CPUSensor = iota
	CPUTime
	CPUUtilization
	RSS
	VMSize
	Pages
	ReadMB
	WriteMB

	NumCPUSensors // = 8
)

var cpuSensorNames = [NumCPUSensors]string{
	"CPUFrequency",
	"CPUTime",
	"CPUUtilization",
	"RSS",
	"VMSize",
	"Pages",
	"ReadMB",
	"WriteMB",
}

var cpuSensorDescriptions = [NumCPUSensors]string{
	"CPU clock frequency",
	"Time spent on compute by CPU",
	"CPU utilization by job",
	"Resident Memory Footprint Set Size",
	"Virtual memory used by process",
	"Linux memory pages",
	"Amount of data read",
	"Amount of data written",
}

// String returns the Slurm-profiling column name.
func (s CPUSensor) String() string {
	if s < 0 || s >= NumCPUSensors {
		return "unknown_cpu_sensor"
	}
	return cpuSensorNames[s]
}

// Description returns the paper's Table II description.
func (s CPUSensor) Description() string {
	if s < 0 || s >= NumCPUSensors {
		return ""
	}
	return cpuSensorDescriptions[s]
}

// Hardware constants of the simulated TX-Gaia GPU partition: dual Intel Xeon
// Gold 6248 (2×20 cores, 384 GB) and two NVIDIA V100-32GB per node.
const (
	GPUMemoryTotalMiB = 32510.0 // V100 32 GB as reported by DCGM
	GPUPowerIdleW     = 42.0
	GPUPowerMaxW      = 300.0
	AmbientTempC      = 30.0
	GPUsPerNode       = 2
	CoresPerNode      = 40
	NodeRAMMiB        = 384 * 1024.0

	// GPUSampleDT is the DCGM sampling period. The challenge's 60-second
	// windows contain 540 samples, fixing the rate at 9 Hz.
	GPUSampleDT = 60.0 / 540.0

	// CPUSampleDT is the Slurm-profiling sampling period; CPU and GPU series
	// have different lengths for the same trial, as the paper stresses.
	CPUSampleDT = 10.0
)
