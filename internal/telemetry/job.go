package telemetry

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Job is one labelled training job: a model class realised with
// job-specific hyper-parameters, running for Duration seconds on NumGPUs
// V100s spread across NumNodes nodes. All telemetry for the job derives
// deterministically from Seed.
type Job struct {
	ID       int
	Class    Class
	Seed     int64
	NumGPUs  int
	NumNodes int
	Duration float64 // seconds
	Startup  float64 // seconds of class-agnostic startup before training

	prof Profile // per-job jittered realisation of the class profile

	// Per-GPU hardware variation.
	utilOffset []float64
	tempOffset []float64
	powOffset  []float64
}

// phase identifies where in the training lifecycle a timestamp falls.
type phase int

const (
	phaseStartup phase = iota
	phaseTrain
	phaseValidation
	phaseCheckpoint
)

// noise stream channels (third argument to streamSeed).
const (
	chUtil = iota
	chMem
	chPower
	chTempGPU
	chTempMem
	chSpike
	chMemUtil
	chGap
	chSlowPhase
	chStall
)

// phaseAt returns the lifecycle phase at absolute job time t and the time
// elapsed since training started (0 during startup).
func (j *Job) phaseAt(t float64) (phase, float64) {
	if t < j.Startup {
		return phaseStartup, 0
	}
	tt := t - j.Startup
	p := j.prof
	pos := math.Mod(tt, p.EpochTime)
	valDur := p.EpochTime * p.ValFrac
	ckpt := math.Min(p.CkptTime, p.EpochTime*0.1)
	trainDur := p.EpochTime - valDur - ckpt
	switch {
	case pos < trainDur:
		return phaseTrain, tt
	case pos < trainDur+valDur:
		return phaseValidation, tt
	default:
		return phaseCheckpoint, tt
	}
}

// stepState returns the within-step phase in [0,1) and the effective duty
// cycle at training time tt, accounting for the slow warmup of the first
// few steps (framework autotuning).
func (j *Job) stepState(tt float64) (stepPhase, duty, utilScale float64) {
	p := j.prof
	step := p.StepTime
	utilScale = 1.0
	warmup := 8 * p.StepTime
	if tt < warmup*2 {
		step = p.StepTime * 2
		utilScale = 0.75
	}
	stepPhase = math.Mod(tt, step) / step
	duty = p.Duty
	if j.NumNodes > 1 {
		duty = clamp(duty-0.04, 0.2, 0.97) // inter-node gradient sync gap
	}
	return stepPhase, duty, utilScale
}

// busyFraction returns the fraction of [t0, t0+dt) covered by the busy part
// of a square wave with the given period and duty cycle (busy first, idle
// after). It is the exact integral, so overlapping windows remain
// consistent.
func busyFraction(t0, dt, period, duty float64) float64 {
	if period <= 0 {
		return duty
	}
	busyLen := duty * period
	cum := func(x float64) float64 {
		n := math.Floor(x / period)
		r := x - n*period
		return n*busyLen + math.Min(r, busyLen)
	}
	return (cum(t0+dt) - cum(t0)) / dt
}

// inStall reports whether an input-pipeline stall is active at absolute
// time t. Stalls are scheduled deterministically per (job, gpu) in 10-second
// blocks: a block contains a stall with probability rate·10/60, at a hashed
// offset, lasting 0.5-3 s.
func (j *Job) inStall(gpu int, t float64) bool {
	const blockLen = 10.0
	rate := j.prof.StallRate
	if rate <= 0 {
		return false
	}
	prob := rate * blockLen / 60
	if prob > 0.95 {
		prob = 0.95
	}
	stream := streamSeed(j.Seed, gpu, chStall)
	// A stall may spill across one block boundary; check two blocks.
	for _, b := range []int64{int64(t / blockLen), int64(t/blockLen) - 1} {
		if b < 0 {
			continue
		}
		if hashUniform(stream, 3*b) >= prob {
			continue
		}
		start := float64(b)*blockLen + hashUniform(stream, 3*b+1)*blockLen
		dur := 0.3 + 1.2*hashUniform(stream, 3*b+2)
		if t >= start && t < start+dur {
			return true
		}
	}
	return false
}

// stallFraction estimates the fraction of [t, t+dt) spent stalled on the
// given GPU's input pipeline by probing inStall at sub-interval resolution.
// Used to couple host CPU telemetry to GPU starvation.
func (j *Job) stallFraction(gpu int, t, dt float64) float64 {
	if gpu >= j.NumGPUs {
		gpu = 0
	}
	const probes = 20
	hit := 0
	for k := 0; k < probes; k++ {
		if j.inStall(gpu, t+dt*(float64(k)+0.5)/probes) {
			hit++
		}
	}
	return float64(hit) / probes
}

// gpuSample computes the seven DCGM sensor values for one GPU at sample
// index idx (absolute time idx*GPUSampleDT), given the thermal state carried
// by the caller. It returns the raw (unquantised) values; temperature state
// is advanced in place.
func (j *Job) gpuSample(gpu int, idx int64, tGPU, tMem *float64) [NumGPUSensors]float64 {
	t := float64(idx) * GPUSampleDT
	p := j.prof
	ph, tt := j.phaseAt(t)

	var util, memUsed, powerEff float64
	switch ph {
	case phaseStartup:
		util = j.startupUtil(gpu, idx, t)
		memUsed = j.startupMem(t)
		powerEff = 0.5
	case phaseTrain:
		sp, duty, scale := j.stepState(tt)
		slow := p.SlowModAmp * math.Sin(2*math.Pi*tt/p.SlowModPeriod+
			hashUniform(streamSeed(j.Seed, gpu, chSlowPhase), 0)*2*math.Pi)
		// DCGM utilization is a counter-derived average over the sampling
		// period, not an instantaneous reading: each sample reports the
		// fraction of the interval the kernel queue was busy. This makes
		// the per-sample distribution (and hence the window variance the
		// covariance embedding sees) a function of the step period relative
		// to the 9 Hz sampling — the cue that separates sub-architectures
		// whose only difference is per-step compute time.
		step := p.StepTime
		if tt < 16*p.StepTime {
			step = p.StepTime * 2
		}
		frac := busyFraction(tt, GPUSampleDT, step, duty)
		high := (p.UtilHigh+j.utilOffset[gpu])*scale + slow
		util = p.UtilLow + (high-p.UtilLow)*frac +
			(p.UtilJitter*frac+1.0)*hashNormal(streamSeed(j.Seed, gpu, chUtil), idx)
		memUsed = j.trainMem(gpu, tt, sp, duty, idx, 1.0)
		powerEff = p.PowerEff
		if j.inStall(gpu, t) {
			// Input-pipeline stall: the GPU starves while memory stays
			// allocated. Stall *rate* is a class cue; the stalls themselves
			// randomise window means.
			util = 1 + 2*math.Abs(hashNormal(streamSeed(j.Seed, gpu, chUtil), idx))
			powerEff = 0.45
		}
	case phaseValidation:
		// Forward-only: shorter steps, higher duty, lower power per util.
		valStep := math.Max(p.StepTime*0.4, GPUSampleDT)
		sp := math.Mod(tt, valStep) / valStep
		if sp < 0.96 {
			util = math.Min(p.UtilHigh*1.05, 100) +
				p.UtilJitter*0.7*hashNormal(streamSeed(j.Seed, gpu, chUtil), idx)
		} else {
			util = p.UtilLow
		}
		memUsed = j.trainMem(gpu, tt, sp, 0.96, idx, 0.8)
		powerEff = p.PowerEff * 0.8
	case phaseCheckpoint:
		util = 2 + math.Abs(hashNormal(streamSeed(j.Seed, gpu, chUtil), idx))
		memUsed = p.MemBaseMiB + p.MemActMiB*0.8
		powerEff = 0.45
	}
	util = clamp(util, 0, 100)

	memUtil := clamp(util*p.MemUtilRatio*
		(1+0.05*hashNormal(streamSeed(j.Seed, gpu, chMemUtil), idx)), 0, 100)

	power := GPUPowerIdleW + (GPUPowerMaxW-GPUPowerIdleW)*powerEff*
		(0.72*util+0.28*memUtil)/100 +
		j.powOffset[gpu] + 1.5*hashNormal(streamSeed(j.Seed, gpu, chPower), idx)
	power = clamp(power, GPUPowerIdleW*0.85, 310)

	// First-order thermal models: GPU die (fast) and HBM stacks (slow).
	const (
		tauGPU, rGPU = 40.0, 0.16
		tauMem, rMem = 60.0, 0.115
	)
	amb := AmbientTempC + j.tempOffset[gpu]
	*tGPU += GPUSampleDT/tauGPU*(amb+rGPU*power-*tGPU) +
		0.08*hashNormal(streamSeed(j.Seed, gpu, chTempGPU), idx)
	*tMem += GPUSampleDT/tauMem*(amb+rMem*power-*tMem) +
		0.06*hashNormal(streamSeed(j.Seed, gpu, chTempMem), idx)

	memUsed = clamp(memUsed, 0, GPUMemoryTotalMiB)
	return [NumGPUSensors]float64{
		util,
		memUtil,
		GPUMemoryTotalMiB - memUsed,
		memUsed,
		*tGPU,
		*tMem,
		power,
	}
}

// startupUtil models the class-agnostic startup: an idle GPU with sparse
// initialisation spikes while the host loads data and builds the model.
func (j *Job) startupUtil(gpu int, idx int64, t float64) float64 {
	if t > j.Startup*0.85 {
		// Model materialisation: first kernels warm the GPU.
		return 8 + 10*hashUniform(streamSeed(j.Seed, gpu, chSpike), idx)
	}
	if hashUniform(streamSeed(j.Seed, gpu, chSpike), idx) < 0.03 {
		return 10 + 35*hashUniform(streamSeed(j.Seed, gpu, chSpike), idx+1<<40)
	}
	return math.Abs(hashNormal(streamSeed(j.Seed, gpu, chUtil), idx)) * 0.8
}

// startupMem models memory during startup: nothing, then the CUDA context,
// then the parameter/optimizer allocation ramp.
func (j *Job) startupMem(t float64) float64 {
	su := j.Startup
	const ctxMiB = 450.0
	switch {
	case t < 0.25*su:
		return 0
	case t < 0.40*su:
		return ctxMiB * (t - 0.25*su) / (0.15 * su)
	case t < 0.85*su:
		return ctxMiB
	default:
		frac := (t - 0.85*su) / (0.15 * su)
		return ctxMiB + (j.prof.MemBaseMiB-ctxMiB)*clamp(frac, 0, 1)
	}
}

// trainMem models steady-state memory: base + activation plateau (growing
// over the first ~90 s of training as caching allocators settle) + the
// per-step activation sawtooth.
func (j *Job) trainMem(gpu int, tt, stepPhase, duty float64, idx int64, actScale float64) float64 {
	p := j.prof
	plateau := p.MemActMiB * actScale * (1 - 0.30*math.Exp(-tt/90))
	var saw float64
	if stepPhase < duty {
		saw = stepPhase / duty // forward: activations accumulate
	} else {
		saw = 1 - (stepPhase-duty)/(1-duty) // backward: freed
	}
	return p.MemBaseMiB + plateau + p.MemSawMiB*saw +
		8*hashNormal(streamSeed(j.Seed, gpu, chMem), idx)
}

// steadyTemps estimates the thermal state at absolute time t0 so windows can
// start mid-job without integrating from t=0: the steady-state temperature
// for the current phase's mean power, relaxed toward ambient when the job is
// younger than the thermal time constant.
func (j *Job) steadyTemps(gpu int, t0 float64) (tGPU, tMem float64) {
	ph, _ := j.phaseAt(t0)
	p := j.prof
	var meanUtil, eff float64
	switch ph {
	case phaseStartup:
		meanUtil, eff = 3, 0.5
	case phaseTrain:
		_, duty, _ := j.stepState(math.Max(t0-j.Startup, 0))
		meanUtil = p.UtilHigh*duty + p.UtilLow*(1-duty)
		eff = p.PowerEff
	case phaseValidation:
		meanUtil, eff = math.Min(p.UtilHigh*1.05, 100)*0.96, p.PowerEff*0.8
	case phaseCheckpoint:
		meanUtil, eff = 3, 0.45
	}
	meanPower := GPUPowerIdleW + (GPUPowerMaxW-GPUPowerIdleW)*eff*
		(0.72+0.28*p.MemUtilRatio)*meanUtil/100
	amb := AmbientTempC + j.tempOffset[gpu]
	warm := 1 - math.Exp(-t0/40)
	tGPU = amb + (0.16*meanPower)*warm
	warmMem := 1 - math.Exp(-t0/60)
	tMem = amb + (0.115*meanPower)*warmMem
	return tGPU, tMem
}

// GPUWindow materialises n consecutive DCGM samples for one GPU starting at
// absolute job time t0. The result is an n×7 matrix whose columns follow the
// Table III sensor order. Values are quantised the way DCGM reports them
// (integer percentages, MiB and °C; power to 0.01 W).
//
// The window must lie inside the job: t0 ≥ 0 and t0 + n·dt ≤ Duration.
func (j *Job) GPUWindow(gpu int, t0 float64, n int) (*mat.Matrix, error) {
	if gpu < 0 || gpu >= j.NumGPUs {
		return nil, fmt.Errorf("telemetry: job %d has %d GPUs, requested %d", j.ID, j.NumGPUs, gpu)
	}
	if t0 < 0 || t0+float64(n)*GPUSampleDT > j.Duration+1e-9 {
		return nil, fmt.Errorf("telemetry: window [%.1f, %.1f) outside job duration %.1f",
			t0, t0+float64(n)*GPUSampleDT, j.Duration)
	}
	out := mat.New(n, int(NumGPUSensors))
	tGPU, tMem := j.steadyTemps(gpu, t0)
	startIdx := int64(math.Round(t0 / GPUSampleDT))
	for i := 0; i < n; i++ {
		s := j.gpuSample(gpu, startIdx+int64(i), &tGPU, &tMem)
		row := out.Row(i)
		row[UtilizationGPUPct] = math.Round(s[UtilizationGPUPct])
		row[UtilizationMemoryPct] = math.Round(s[UtilizationMemoryPct])
		row[MemoryFreeMiB] = math.Round(s[MemoryFreeMiB])
		row[MemoryUsedMiB] = math.Round(s[MemoryUsedMiB])
		row[TemperatureGPU] = math.Round(s[TemperatureGPU])
		row[TemperatureMemory] = math.Round(s[TemperatureMemory])
		row[PowerDrawW] = math.Round(s[PowerDrawW]*100) / 100
	}
	return out, nil
}

// HasGap reports whether the telemetry stream for the given GPU has a
// collector outage overlapping [t0, t1). Real monitoring pipelines drop
// samples when collectors restart; the challenge's random-window datasets
// have slightly different trial counts because of such artefacts.
func (j *Job) HasGap(gpu int, t0, t1 float64) bool {
	const blockLen = 600.0
	const gapProb = 0.012
	stream := streamSeed(j.Seed, gpu, chGap)
	first := int64(math.Floor(t0/blockLen)) - 1
	last := int64(math.Floor(t1 / blockLen))
	for b := first; b <= last; b++ {
		if b < 0 {
			continue
		}
		if hashUniform(stream, 3*b) >= gapProb {
			continue
		}
		gapStart := float64(b)*blockLen + hashUniform(stream, 3*b+1)*blockLen
		gapLen := 5 + 15*hashUniform(stream, 3*b+2)
		if gapStart < t1 && gapStart+gapLen > t0 {
			return true
		}
	}
	return false
}

// NumGPUSeries returns the number of labelled GPU time series the job
// contributes (one per GPU, all with the same class label).
func (j *Job) NumGPUSeries() int { return j.NumGPUs }
