package telemetry

import (
	"fmt"
	"math"
	"math/rand"
)

// Config controls labelled-dataset generation.
type Config struct {
	// Seed makes the whole dataset reproducible.
	Seed int64

	// Scale multiplies the per-class job counts (1.0 = the paper's 3,430
	// jobs). Every class keeps at least one job, so the 26-way label space
	// is preserved at any scale.
	Scale float64

	// DisableStartup replaces the class-agnostic startup phase with
	// immediate training. This is the ablation for the paper's §IV-A
	// hypothesis that early-job telemetry is generic across classes.
	DisableStartup bool

	// GapRate scales the telemetry-outage probability (1.0 = default).
	// Zero disables gaps entirely.
	GapRate float64
}

// DefaultConfig is the scaled generation preset used by tests and examples.
func DefaultConfig() Config {
	return Config{Seed: 1, Scale: 1.0, GapRate: 1.0}
}

// Simulator generates the labelled dataset: jobs, their telemetry and the
// scheduler log.
type Simulator struct {
	cfg  Config
	jobs []*Job
}

// NewSimulator builds the deterministic job population for the config.
func NewSimulator(cfg Config) (*Simulator, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("telemetry: scale must be positive, got %v", cfg.Scale)
	}
	if cfg.Scale > 1.0 {
		return nil, fmt.Errorf("telemetry: scale must be at most 1.0, got %v", cfg.Scale)
	}
	s := &Simulator{cfg: cfg}
	s.generateJobs()
	return s, nil
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Jobs returns the generated job population (shared slice; do not modify).
func (s *Simulator) Jobs() []*Job { return s.jobs }

// scaledCount returns the job count for class c under the configured scale.
func (s *Simulator) scaledCount(c Class) int {
	n := int(math.Round(float64(c.JobCount()) * s.cfg.Scale))
	if n < 1 {
		n = 1
	}
	return n
}

// gpuCountDist is the multi-GPU request distribution, calibrated so that
// 3,430 jobs yield ≈18.2k GPU series (the paper's "over 17,000").
var gpuCountDist = []struct {
	gpus int
	p    float64
}{
	{1, 0.22}, {2, 0.25}, {4, 0.20}, {8, 0.18}, {16, 0.15},
}

func drawGPUCount(rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for _, e := range gpuCountDist {
		acc += e.p
		if u < acc {
			return e.gpus
		}
	}
	return gpuCountDist[len(gpuCountDist)-1].gpus
}

// drawDuration draws a job duration in seconds: log-normal with a median of
// about 33 minutes, plus a 10% population of short "debug" runs that create
// the paper's eligibility gap between the start and middle window datasets.
func drawDuration(rng *rand.Rand) float64 {
	if rng.Float64() < 0.10 {
		return 50 + 35*rng.Float64() // debug run: 50-85 s
	}
	d := math.Exp(math.Log(2000) + rng.NormFloat64()*1.1)
	return clamp(d, 40, 86400)
}

func (s *Simulator) generateJobs() {
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	id := 0
	for _, c := range AllClasses() {
		count := s.scaledCount(c)
		for k := 0; k < count; k++ {
			seed := rng.Int63()
			jobRNG := rand.New(rand.NewSource(seed))
			prof := ProfileFor(c).jitter(jobRNG)
			gpus := drawGPUCount(jobRNG)
			startup := 15 + 28*jobRNG.Float64() + prof.StartupBias
			if s.cfg.DisableStartup {
				startup = 0
			}
			j := &Job{
				ID:       id,
				Class:    c,
				Seed:     seed,
				NumGPUs:  gpus,
				NumNodes: (gpus + GPUsPerNode - 1) / GPUsPerNode,
				Duration: drawDuration(jobRNG),
				Startup:  startup,
				prof:     prof,
			}
			j.utilOffset = make([]float64, gpus)
			j.tempOffset = make([]float64, gpus)
			j.powOffset = make([]float64, gpus)
			for g := 0; g < gpus; g++ {
				j.utilOffset[g] = jobRNG.NormFloat64() * 1.2
				j.tempOffset[g] = jobRNG.NormFloat64() * 1.5
				j.powOffset[g] = jobRNG.NormFloat64() * 4
			}
			if gpus > 0 {
				j.utilOffset[0] += 1.5 // rank 0 does logging/aggregation
			}
			id++
			s.jobs = append(s.jobs, j)
		}
	}
}

// HasGap applies the configured gap rate on top of the job's deterministic
// gap schedule.
func (s *Simulator) HasGap(j *Job, gpu int, t0, t1 float64) bool {
	if s.cfg.GapRate <= 0 {
		return false
	}
	// GapRate scales probability by thinning: a gap present in the base
	// schedule is kept with probability min(GapRate, 1).
	if !j.HasGap(gpu, t0, t1) {
		return false
	}
	if s.cfg.GapRate >= 1 {
		return true
	}
	keep := hashUniform(streamSeed(j.Seed, gpu, chGap)^0xfeed, int64(t0))
	return keep < s.cfg.GapRate
}

// TotalGPUSeries counts the labelled GPU time series across all jobs.
func (s *Simulator) TotalGPUSeries() int {
	total := 0
	for _, j := range s.jobs {
		total += j.NumGPUSeries()
	}
	return total
}

// SchedEntry is one scheduler-log record, in the spirit of the anonymised
// Slurm log shipped with the full MIT Supercloud dataset.
type SchedEntry struct {
	JobID     int
	UserHash  string
	Partition string
	ModelName string // label — present only in the labelled subset
	Nodes     int
	GPUs      int
	SubmitSec float64
	StartSec  float64
	EndSec    float64
	ExitCode  int
}

// SchedulerLog derives a scheduler log for the job population. Submit and
// start times are synthetic queue arrivals; exit codes mark the ~3% of jobs
// that die (OOM or preemption).
func (s *Simulator) SchedulerLog() []SchedEntry {
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5c4ed))
	entries := make([]SchedEntry, 0, len(s.jobs))
	clock := 0.0
	for _, j := range s.jobs {
		clock += rng.ExpFloat64() * 45 // Poisson-ish arrivals
		wait := rng.ExpFloat64() * 120
		exit := 0
		if rng.Float64() < 0.03 {
			exit = 1
		}
		entries = append(entries, SchedEntry{
			JobID:     j.ID,
			UserHash:  fmt.Sprintf("u%08x", splitmix64(uint64(j.Seed))&0xffffffff),
			Partition: "gaia",
			ModelName: j.Class.Name(),
			Nodes:     j.NumNodes,
			GPUs:      j.NumGPUs,
			SubmitSec: clock,
			StartSec:  clock + wait,
			EndSec:    clock + wait + j.Duration,
			ExitCode:  exit,
		})
	}
	return entries
}
