package telemetry

import "math"

// Deterministic value noise.
//
// Window extraction must be a pure function of (job, gpu, time): two windows
// that overlap in absolute job time have to agree on the overlap, or the
// start/middle/random datasets would disagree about the same underlying
// telemetry. A stateful PRNG cannot provide that, so all per-sample noise is
// derived from a splitmix64 hash of (stream seed, sample index).

// splitmix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUniform returns a deterministic uniform value in [0, 1) for the given
// stream and index.
func hashUniform(stream uint64, idx int64) float64 {
	h := splitmix64(stream ^ splitmix64(uint64(idx)))
	return float64(h>>11) / (1 << 53)
}

// hashNormal returns a deterministic standard-normal value for the given
// stream and index, via Box-Muller on two hashed uniforms.
func hashNormal(stream uint64, idx int64) float64 {
	u1 := hashUniform(stream, 2*idx)
	u2 := hashUniform(stream^0xabcdef1234567890, 2*idx+1)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// streamSeed derives a per-(job, gpu, sensor-channel) noise stream from the
// job seed.
func streamSeed(jobSeed int64, gpu, channel int) uint64 {
	return splitmix64(uint64(jobSeed)) ^ splitmix64(uint64(gpu)*0x1000193+uint64(channel)*0x9e37)
}
