package telemetry

import (
	"math"
	"math/rand"
)

// Profile holds the telemetry-generation parameters of one model class: how
// the class's training loop expresses itself through the seven DCGM sensors.
// Values are calibrated to V100-class behaviour; what matters for the
// challenge is that classes differ in the *joint* statistics of the sensors
// while per-job jitter keeps neighbouring sub-architectures overlapping.
type Profile struct {
	StepTime   float64 // seconds per optimizer step
	Duty       float64 // fraction of a step the GPU kernel queue is busy
	UtilHigh   float64 // mean GPU utilization (%) during the busy part
	UtilLow    float64 // utilization between bursts (dataloader / sync gap)
	UtilJitter float64 // per-sample utilization noise during compute (abs %)

	MemUtilRatio float64 // memory-controller utilization per unit GPU util

	MemBaseMiB float64 // CUDA context + parameters + optimizer state
	MemActMiB  float64 // activation plateau above the base
	MemSawMiB  float64 // per-step activation sawtooth amplitude

	PowerEff float64 // efficiency converting utilization into power draw

	EpochTime float64 // seconds per epoch
	ValFrac   float64 // fraction of an epoch spent in validation
	CkptTime  float64 // seconds per end-of-epoch checkpoint stall

	SlowModAmp    float64 // slow utilization drift amplitude (%)
	SlowModPeriod float64 // drift period (s)

	CPUUtilPct    float64 // host CPU utilization (% of allocated cores)
	ReadMBPerStep float64 // input pipeline read volume per step
	StartupBias   float64 // extra startup seconds (dataset preprocessing)

	// StallRate is the expected number of input-pipeline stalls per minute
	// (dataloader exhaustion, shared-filesystem hiccups). Stall rates are a
	// stable property of the input pipeline — and therefore of the class —
	// while the stalls themselves randomise window-mean utilization.
	StallRate float64
}

// unetProfile derives a U-Net profile from depth d (3-5) and base filter
// count f (32/64/128): memory footprint scales with filters, utilization and
// step time with depth.
func unetProfile(d, f int) Profile {
	df := float64(d)
	ff := float64(f)
	return Profile{
		StepTime:      0.20 + 0.06*df + ff/400,
		Duty:          0.74 + 0.03*df,
		UtilHigh:      math.Min(62+6*df+ff/8, 97),
		UtilLow:       12,
		UtilJitter:    3.5,
		MemUtilRatio:  0.80,
		MemBaseMiB:    1500 + 130*df,
		MemActMiB:     ff * (40 + 25*df),
		MemSawMiB:     ff * 25,
		PowerEff:      0.90,
		EpochTime:     180 + 42*df,
		ValFrac:       0.10,
		CkptTime:      4,
		SlowModAmp:    2.5,
		SlowModPeriod: 45,
		CPUUtilPct:    65,
		ReadMBPerStep: 90,
		StallRate:     4.5,
	}
}

var profiles = [NumClasses]Profile{
	VGG11: {StepTime: 0.32, Duty: 0.88, UtilHigh: 96, UtilLow: 18, UtilJitter: 2.0,
		MemUtilRatio: 0.62, MemBaseMiB: 3200, MemActMiB: 5200, MemSawMiB: 2100,
		PowerEff: 0.96, EpochTime: 240, ValFrac: 0.08, CkptTime: 4,
		SlowModAmp: 1.5, SlowModPeriod: 60, CPUUtilPct: 55, ReadMBPerStep: 180, StallRate: 2},
	VGG16: {StepTime: 0.45, Duty: 0.89, UtilHigh: 97, UtilLow: 17, UtilJitter: 1.8,
		MemUtilRatio: 0.64, MemBaseMiB: 3600, MemActMiB: 6200, MemSawMiB: 2460,
		PowerEff: 0.97, EpochTime: 300, ValFrac: 0.08, CkptTime: 5,
		SlowModAmp: 1.5, SlowModPeriod: 60, CPUUtilPct: 52, ReadMBPerStep: 180, StallRate: 2},
	VGG19: {StepTime: 0.55, Duty: 0.90, UtilHigh: 97.5, UtilLow: 16, UtilJitter: 1.7,
		MemUtilRatio: 0.65, MemBaseMiB: 3900, MemActMiB: 6800, MemSawMiB: 2700,
		PowerEff: 0.98, EpochTime: 340, ValFrac: 0.08, CkptTime: 5,
		SlowModAmp: 1.4, SlowModPeriod: 60, CPUUtilPct: 50, ReadMBPerStep: 180, StallRate: 2},
	Inception3: {StepTime: 0.50, Duty: 0.80, UtilHigh: 86, UtilLow: 20, UtilJitter: 5.0,
		MemUtilRatio: 0.58, MemBaseMiB: 2400, MemActMiB: 5000, MemSawMiB: 1950,
		PowerEff: 0.88, EpochTime: 300, ValFrac: 0.09, CkptTime: 4,
		SlowModAmp: 3.0, SlowModPeriod: 40, CPUUtilPct: 60, ReadMBPerStep: 170, StallRate: 3},
	Inception4: {StepTime: 0.70, Duty: 0.81, UtilHigh: 88, UtilLow: 19, UtilJitter: 5.0,
		MemUtilRatio: 0.60, MemBaseMiB: 2900, MemActMiB: 6400, MemSawMiB: 2280,
		PowerEff: 0.89, EpochTime: 380, ValFrac: 0.09, CkptTime: 5,
		SlowModAmp: 3.0, SlowModPeriod: 40, CPUUtilPct: 58, ReadMBPerStep: 170, StallRate: 3},
	ResNet50: {StepTime: 0.30, Duty: 0.85, UtilHigh: 91, UtilLow: 21, UtilJitter: 3.0,
		MemUtilRatio: 0.66, MemBaseMiB: 2100, MemActMiB: 4600, MemSawMiB: 1680,
		PowerEff: 0.92, EpochTime: 220, ValFrac: 0.09, CkptTime: 3,
		SlowModAmp: 2.0, SlowModPeriod: 55, CPUUtilPct: 62, ReadMBPerStep: 175, StallRate: 2.5},
	ResNet50V15: {StepTime: 0.33, Duty: 0.86, UtilHigh: 92.5, UtilLow: 21, UtilJitter: 2.9,
		MemUtilRatio: 0.68, MemBaseMiB: 2250, MemActMiB: 5000, MemSawMiB: 1770,
		PowerEff: 0.93, EpochTime: 230, ValFrac: 0.09, CkptTime: 3,
		SlowModAmp: 2.0, SlowModPeriod: 55, CPUUtilPct: 62, ReadMBPerStep: 175, StallRate: 2.5},
	ResNet101: {StepTime: 0.50, Duty: 0.87, UtilHigh: 92, UtilLow: 20, UtilJitter: 2.8,
		MemUtilRatio: 0.67, MemBaseMiB: 2700, MemActMiB: 5800, MemSawMiB: 1920,
		PowerEff: 0.93, EpochTime: 300, ValFrac: 0.09, CkptTime: 4,
		SlowModAmp: 1.9, SlowModPeriod: 55, CPUUtilPct: 58, ReadMBPerStep: 170, StallRate: 2.4},
	ResNet101V2: {StepTime: 0.53, Duty: 0.88, UtilHigh: 93, UtilLow: 20, UtilJitter: 2.7,
		MemUtilRatio: 0.69, MemBaseMiB: 2760, MemActMiB: 6000, MemSawMiB: 1980,
		PowerEff: 0.94, EpochTime: 310, ValFrac: 0.09, CkptTime: 4,
		SlowModAmp: 1.9, SlowModPeriod: 55, CPUUtilPct: 58, ReadMBPerStep: 170, StallRate: 2.4},
	ResNet152: {StepTime: 0.68, Duty: 0.88, UtilHigh: 93, UtilLow: 19, UtilJitter: 2.6,
		MemUtilRatio: 0.68, MemBaseMiB: 3200, MemActMiB: 6600, MemSawMiB: 2100,
		PowerEff: 0.94, EpochTime: 360, ValFrac: 0.09, CkptTime: 5,
		SlowModAmp: 1.8, SlowModPeriod: 55, CPUUtilPct: 55, ReadMBPerStep: 165, StallRate: 2.2},
	ResNet152V2: {StepTime: 0.71, Duty: 0.89, UtilHigh: 94, UtilLow: 19, UtilJitter: 2.5,
		MemUtilRatio: 0.70, MemBaseMiB: 3260, MemActMiB: 6800, MemSawMiB: 2160,
		PowerEff: 0.95, EpochTime: 370, ValFrac: 0.09, CkptTime: 5,
		SlowModAmp: 1.8, SlowModPeriod: 55, CPUUtilPct: 55, ReadMBPerStep: 165, StallRate: 2.2},
	Bert: {StepTime: 0.85, Duty: 0.93, UtilHigh: 95, UtilLow: 35, UtilJitter: 1.5,
		MemUtilRatio: 0.88, MemBaseMiB: 4200, MemActMiB: 9000, MemSawMiB: 1260,
		PowerEff: 1.00, EpochTime: 600, ValFrac: 0.06, CkptTime: 8,
		SlowModAmp: 1.0, SlowModPeriod: 90, CPUUtilPct: 30, ReadMBPerStep: 40, StallRate: 0.6},
	DistillBert: {StepTime: 0.50, Duty: 0.90, UtilHigh: 93, UtilLow: 33, UtilJitter: 1.8,
		MemUtilRatio: 0.84, MemBaseMiB: 2600, MemActMiB: 5200, MemSawMiB: 990,
		PowerEff: 0.98, EpochTime: 420, ValFrac: 0.06, CkptTime: 6,
		SlowModAmp: 1.1, SlowModPeriod: 90, CPUUtilPct: 32, ReadMBPerStep: 40, StallRate: 0.8},
	DimeNet: {StepTime: 0.60, Duty: 0.55, UtilHigh: 48, UtilLow: 6, UtilJitter: 9.0,
		MemUtilRatio: 0.40, MemBaseMiB: 1300, MemActMiB: 2600, MemSawMiB: 1560,
		PowerEff: 0.70, EpochTime: 150, ValFrac: 0.12, CkptTime: 2,
		SlowModAmp: 6.0, SlowModPeriod: 25, CPUUtilPct: 85, ReadMBPerStep: 12, StartupBias: 12, StallRate: 7},
	SchNet: {StepTime: 0.35, Duty: 0.60, UtilHigh: 41, UtilLow: 7, UtilJitter: 8.0,
		MemUtilRatio: 0.38, MemBaseMiB: 1100, MemActMiB: 1900, MemSawMiB: 1260,
		PowerEff: 0.68, EpochTime: 120, ValFrac: 0.12, CkptTime: 2,
		SlowModAmp: 5.5, SlowModPeriod: 22, CPUUtilPct: 80, ReadMBPerStep: 10, StartupBias: 10, StallRate: 6},
	PNA: {StepTime: 0.50, Duty: 0.50, UtilHigh: 56, UtilLow: 6, UtilJitter: 10.0,
		MemUtilRatio: 0.44, MemBaseMiB: 1500, MemActMiB: 3100, MemSawMiB: 1680,
		PowerEff: 0.72, EpochTime: 160, ValFrac: 0.12, CkptTime: 2,
		SlowModAmp: 6.5, SlowModPeriod: 28, CPUUtilPct: 82, ReadMBPerStep: 14, StartupBias: 12, StallRate: 8},
	NNConv: {StepTime: 0.40, Duty: 0.50, UtilHigh: 35, UtilLow: 5, UtilJitter: 7.0,
		MemUtilRatio: 0.36, MemBaseMiB: 1000, MemActMiB: 1700, MemSawMiB: 1140,
		PowerEff: 0.66, EpochTime: 130, ValFrac: 0.12, CkptTime: 2,
		SlowModAmp: 5.0, SlowModPeriod: 24, CPUUtilPct: 78, ReadMBPerStep: 10, StartupBias: 10, StallRate: 6.5},
}

func init() {
	profiles[U3x32] = unetProfile(3, 32)
	profiles[U3x64] = unetProfile(3, 64)
	profiles[U3x128] = unetProfile(3, 128)
	profiles[U4x32] = unetProfile(4, 32)
	profiles[U4x64] = unetProfile(4, 64)
	profiles[U4x128] = unetProfile(4, 128)
	profiles[U5x32] = unetProfile(5, 32)
	profiles[U5x64] = unetProfile(5, 64)
	profiles[U5x128] = unetProfile(5, 128)
}

// ProfileFor returns the class-level generation profile.
func ProfileFor(c Class) Profile {
	if c < 0 || c >= NumClasses {
		return Profile{}
	}
	return profiles[c]
}

// jitter draws the per-job realisation of a class profile. Users run the
// same model with different batch sizes, datasets and learning-rate
// schedules, so *levels* (memory footprint, mean utilization) vary a lot
// between jobs of the same class, while the *dynamics* — duty cycle, step
// period, sawtooth amplitude, the power/utilization coupling — stay
// comparatively stable. This asymmetry is what makes the covariance
// embedding the strongest feature set in the paper: level-based features
// smear across jobs, joint-dynamics features do not.
func (p Profile) jitter(rng *rand.Rand) Profile {
	q := p
	// Stable dynamics cues (small jitter).
	q.StepTime *= math.Exp(rng.NormFloat64() * 0.08)
	q.Duty = clamp(q.Duty+rng.NormFloat64()*0.02, 0.30, 0.97)
	q.MemSawMiB *= math.Exp(rng.NormFloat64() * 0.10)
	q.MemUtilRatio = clamp(q.MemUtilRatio*math.Exp(rng.NormFloat64()*0.05), 0.1, 1.0)
	q.PowerEff = clamp(q.PowerEff+rng.NormFloat64()*0.02, 0.4, 1.05)
	q.StallRate *= math.Exp(rng.NormFloat64() * 0.25)
	// Unstable level cues (large jitter): batch size, input resolution and
	// dataset change the footprint and mean load run to run.
	q.UtilHigh = clamp(q.UtilHigh+rng.NormFloat64()*3.0, 5, 100)
	q.UtilLow = clamp(q.UtilLow*math.Exp(rng.NormFloat64()*0.3), 0, q.UtilHigh*0.8)
	memScale := math.Exp(rng.NormFloat64() * 0.22)
	q.MemBaseMiB *= memScale
	q.MemActMiB *= memScale * math.Exp(rng.NormFloat64()*0.12)
	q.EpochTime *= math.Exp(rng.NormFloat64() * 0.25)
	q.CPUUtilPct = clamp(q.CPUUtilPct+rng.NormFloat64()*6, 5, 100)
	// Users whose jittered configuration would not fit the V100 shrink the
	// batch until it does, exactly as on the real cluster.
	const budget = 30000.0
	if total := q.MemBaseMiB + q.MemActMiB + q.MemSawMiB; total > budget {
		fit := (budget - q.MemBaseMiB) / (q.MemActMiB + q.MemSawMiB)
		if fit < 0.1 {
			fit = 0.1
		}
		q.MemActMiB *= fit
		q.MemSawMiB *= fit
	}
	return q
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
