package telemetry

import (
	"testing"
)

func TestReplayInterleavesJobsInTimeOrder(t *testing.T) {
	sim, err := NewSimulator(Config{Seed: 1, Scale: 0.01, GapRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	jobs := sim.Jobs()[:5]
	const horizon = 10.0
	r, err := NewReplay(jobs, 0, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumJobs() == 0 || r.NumJobs() > 5 {
		t.Fatalf("replay holds %d jobs", r.NumJobs())
	}

	lastTick := map[int]int{}
	emitted := 0
	curTick := 0
	for {
		s, ok := r.Next()
		if !ok {
			break
		}
		emitted++
		if s.Tick < curTick {
			t.Fatalf("tick went backwards: %d after %d", s.Tick, curTick)
		}
		curTick = s.Tick
		if prev, seen := lastTick[s.JobID]; seen && s.Tick != prev+1 {
			t.Fatalf("job %d jumped from tick %d to %d", s.JobID, prev, s.Tick)
		}
		lastTick[s.JobID] = s.Tick
		if len(s.Values) != int(NumGPUSensors) {
			t.Fatalf("sample has %d sensors", len(s.Values))
		}
	}
	if emitted != r.TotalSamples() {
		t.Fatalf("emitted %d samples, total says %d", emitted, r.TotalSamples())
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d samples remaining after exhaustion", r.Remaining())
	}
	// Every replayed job produced a contiguous 0..n-1 tick range.
	for id, last := range lastTick {
		if last < 0 {
			t.Fatalf("job %d ended at tick %d", id, last)
		}
	}
}

// TestReplayMatchesGPUWindow pins that the replayed samples are exactly the
// rows GPUWindow materialises: a fleet fed by replay sees the same telemetry
// an offline window extraction would.
func TestReplayMatchesGPUWindow(t *testing.T) {
	sim, err := NewSimulator(Config{Seed: 2, Scale: 0.01, GapRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	var job *Job
	for _, j := range sim.Jobs() {
		if j.Duration > 20 {
			job = j
			break
		}
	}
	if job == nil {
		t.Fatal("no job longer than 20s at this scale")
	}
	r, err := NewReplay([]*Job{job}, 0, 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	n := r.TotalSamples()
	want, err := job.GPUWindow(0, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s, ok := r.Next()
		if !ok {
			t.Fatalf("stream ended early at %d of %d", i, n)
		}
		if s.JobID != job.ID || s.Tick != i {
			t.Fatalf("sample %d attributed to job %d tick %d", i, s.JobID, s.Tick)
		}
		for c, v := range s.Values {
			if v != want.At(i, c) {
				t.Fatalf("sample %d sensor %d: replay %v vs window %v", i, c, v, want.At(i, c))
			}
		}
	}
}

func TestReplayValidation(t *testing.T) {
	sim, err := NewSimulator(Config{Seed: 3, Scale: 0.01, GapRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplay(nil, 0, 0, 60); err == nil {
		t.Error("empty job list should fail")
	}
	if _, err := NewReplay(sim.Jobs()[:1], 0, 0, 0.01); err == nil {
		t.Error("sub-sample horizon should fail")
	}
	// Out-of-range GPU indices clamp rather than fail: replaying a fleet
	// should not abort because one job has fewer GPUs.
	if _, err := NewReplay(sim.Jobs()[:3], 99, 0, 5); err != nil {
		t.Errorf("gpu clamp failed: %v", err)
	}
	if _, err := NewReplay(sim.Jobs()[:3], -1, 0, 5); err != nil {
		t.Errorf("negative gpu clamp failed: %v", err)
	}
}

// TestReplayStartOffset pins that a mid-job replay streams exactly the rows
// GPUWindow materialises from the same start time, and that jobs shorter
// than the start are skipped.
func TestReplayStartOffset(t *testing.T) {
	sim, err := NewSimulator(Config{Seed: 4, Scale: 0.01, GapRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	var long *Job
	for _, j := range sim.Jobs() {
		if j.Duration > 80 {
			long = j
			break
		}
	}
	if long == nil {
		t.Fatal("no job longer than 80s at this scale")
	}
	const start, horizon = 50.0, 70.0
	r, err := NewReplay([]*Job{long}, 0, start, horizon)
	if err != nil {
		t.Fatal(err)
	}
	n := r.TotalSamples()
	want, err := long.GPUWindow(0, start, n)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := r.Next()
	if !ok {
		t.Fatal("empty replay")
	}
	for c := range s.Values {
		if s.Values[c] != want.At(0, c) {
			t.Fatalf("sensor %d: replay %v vs window %v", c, s.Values[c], want.At(0, c))
		}
	}
	if _, err := NewReplay([]*Job{long}, 0, -1, 10); err == nil {
		t.Error("negative start should fail")
	}
	if _, err := NewReplay([]*Job{long}, 0, 50, 50); err == nil {
		t.Error("empty span should fail")
	}
	// A population of only sub-start jobs yields an error, not a replay.
	var short []*Job
	for _, j := range sim.Jobs() {
		if j.Duration < 60 {
			short = append(short, j)
		}
	}
	if len(short) > 0 {
		if _, err := NewReplay(short, 0, 86400, 86500); err == nil {
			t.Error("all-too-short population should fail")
		}
	}
}
