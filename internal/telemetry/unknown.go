package telemetry

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ClassUnknown is the sentinel label of out-of-distribution jobs: workloads
// the ten Table I families do not cover, which a closed-set classifier can
// only mislabel. UnknownJobs generates them; the drift-aware serving plane
// (internal/drift) is scored on rejecting them.
const ClassUnknown Class = -1

// UnknownIDBase offsets out-of-distribution job IDs far above any simulated
// labelled population, so unknown and labelled jobs can share a replay
// without ID collisions.
const UnknownIDBase = 1 << 20

// Unknown workload archetypes. They are deliberately not small
// perturbations of the 26 classes: each one breaks a joint-dynamics
// invariant every training family shares, which is exactly the structure
// the covariance embedding encodes.
const (
	// unknownSaturator pins the GPU near 100% with no step structure, no
	// validation phases and a flat memory plateau — a crypto-miner-like
	// busy loop. Training classes always burst between UtilLow and
	// UtilHigh with a per-step sawtooth.
	unknownSaturator = iota
	// unknownIdler is a mostly idle GPU with rare long-period bursts — an
	// interactive notebook or a misconfigured job. Duty cycles this low
	// appear in no training class.
	unknownIdler
	// unknownOscillator swings utilization with a huge slow modulation and
	// sub-sampling-period steps, plus heavy checkpoint stalls — dynamics
	// amplitudes far outside every profile.
	unknownOscillator
	// unknownBlend interpolates two random training classes and then
	// inverts the memory-utilization coupling, so levels look familiar
	// while the joint sensor statistics are unseen.
	unknownBlend

	numUnknownKinds
)

// NovelClassName labels the i-th class discovered by the continual-learning
// flywheel (internal/adapt): promoted candidates append these names after
// the trained family names in an artifact's ClassNames, so operators can
// tell a grown class from a Table I family at a glance.
func NovelClassName(i int) string {
	return fmt.Sprintf("novel-%d", i)
}

// unknownProfile draws one out-of-distribution profile realisation.
func unknownProfile(rng *rand.Rand) Profile {
	switch rng.Intn(numUnknownKinds) {
	case unknownSaturator:
		return Profile{
			StepTime:      0.5,
			Duty:          0.995,
			UtilHigh:      97 + 3*rng.Float64(),
			UtilLow:       92 + 4*rng.Float64(),
			UtilJitter:    0.3,
			MemUtilRatio:  clamp(0.95+0.05*rng.NormFloat64(), 0.1, 1),
			MemBaseMiB:    6000 + 4000*rng.Float64(),
			MemActMiB:     400,
			MemSawMiB:     2,
			PowerEff:      1.02,
			EpochTime:     1e7, // never validates or checkpoints
			SlowModAmp:    0.2,
			SlowModPeriod: 300,
			CPUUtilPct:    8,
			ReadMBPerStep: 0.2,
		}
	case unknownIdler:
		return Profile{
			StepTime:      4 + 5*rng.Float64(),
			Duty:          0.04 + 0.05*rng.Float64(),
			UtilHigh:      70 + 25*rng.Float64(),
			UtilLow:       0.5,
			UtilJitter:    6,
			MemUtilRatio:  0.25,
			MemBaseMiB:    700 + 400*rng.Float64(),
			MemActMiB:     250,
			MemSawMiB:     120,
			PowerEff:      0.5,
			EpochTime:     1e7,
			SlowModAmp:    1,
			SlowModPeriod: 120,
			CPUUtilPct:    12,
			ReadMBPerStep: 1,
			StallRate:     0.3,
		}
	case unknownOscillator:
		return Profile{
			StepTime:      0.05,
			Duty:          0.6,
			UtilHigh:      55 + 20*rng.Float64(),
			UtilLow:       10,
			UtilJitter:    2,
			MemUtilRatio:  0.5,
			MemBaseMiB:    2000,
			MemActMiB:     2500,
			MemSawMiB:     400,
			PowerEff:      0.85,
			EpochTime:     240,
			ValFrac:       0.30,
			CkptTime:      22,
			SlowModAmp:    30 + 15*rng.Float64(),
			SlowModPeriod: 5 + 6*rng.Float64(),
			CPUUtilPct:    40,
			ReadMBPerStep: 30,
			StallRate:     12,
		}
	default: // unknownBlend
		a := ProfileFor(Class(rng.Intn(int(NumClasses))))
		b := ProfileFor(Class(rng.Intn(int(NumClasses))))
		l := 0.25 + 0.5*rng.Float64()
		mix := func(x, y float64) float64 { return l*x + (1-l)*y }
		p := Profile{
			StepTime:      mix(a.StepTime, b.StepTime) * math.Exp(rng.NormFloat64()*0.5),
			Duty:          clamp(mix(a.Duty, b.Duty)+rng.NormFloat64()*0.1, 0.15, 0.99),
			UtilHigh:      clamp(mix(a.UtilHigh, b.UtilHigh), 5, 100),
			UtilLow:       mix(a.UtilLow, b.UtilLow),
			UtilJitter:    mix(a.UtilJitter, b.UtilJitter) * 2,
			MemBaseMiB:    mix(a.MemBaseMiB, b.MemBaseMiB),
			MemActMiB:     mix(a.MemActMiB, b.MemActMiB),
			MemSawMiB:     mix(a.MemSawMiB, b.MemSawMiB) * math.Exp(rng.NormFloat64()*0.6),
			PowerEff:      clamp(mix(a.PowerEff, b.PowerEff)*0.8, 0.4, 1.05),
			EpochTime:     mix(a.EpochTime, b.EpochTime),
			ValFrac:       mix(a.ValFrac, b.ValFrac),
			CkptTime:      mix(a.CkptTime, b.CkptTime),
			SlowModAmp:    mix(a.SlowModAmp, b.SlowModAmp) * 3,
			SlowModPeriod: mix(a.SlowModPeriod, b.SlowModPeriod) * 0.5,
			CPUUtilPct:    mix(a.CPUUtilPct, b.CPUUtilPct),
			ReadMBPerStep: mix(a.ReadMBPerStep, b.ReadMBPerStep),
			StallRate:     mix(a.StallRate, b.StallRate) * 4,
		}
		// Invert the memory-controller coupling: high GPU utilization with
		// proportionally *low* memory-controller activity (and vice versa)
		// appears in no training family, so the util×mem-util covariance
		// cell lands outside everything the classifier saw.
		p.MemUtilRatio = clamp(1.1-mix(a.MemUtilRatio, b.MemUtilRatio), 0.05, 1)
		return p
	}
}

// FleetMix plans how a driven fleet blends labelled and
// out-of-distribution telemetry: fleet jobs [0, IDJobs) replay labelled
// sources, [IDJobs, IDJobs+len-of-unknown-fanout) replay unknown sources.
// wccserve's demo mode and wccload share it, so the two commands score
// rejection against the same mix.
type FleetMix struct {
	// IDJobs is the number of labelled fleet jobs; fleet job k < IDJobs
	// replays Sources[k % len(Sources)].
	IDJobs int
	// UnknownJobs is the number of out-of-distribution fleet jobs; fleet
	// job IDJobs+j replays Unknown[j % len(Unknown)].
	UnknownJobs int
	// Sources holds the labelled source series (capped at IDJobs), and
	// Unknown the OOD source series (at most 64 distinct; fanned out
	// beyond that).
	Sources []*Job
	Unknown []*Job
	// Fanout maps a source job ID to the fleet job IDs replaying it.
	Fanout map[int][]int
}

// ReplaySources returns every distinct source series the mix replays, in
// labelled-then-unknown order — the job list to hand NewReplay.
func (m *FleetMix) ReplaySources() []*Job {
	out := make([]*Job, 0, len(m.Sources)+len(m.Unknown))
	out = append(out, m.Sources...)
	return append(out, m.Unknown...)
}

// IsUnknown reports whether a fleet job ID replays an out-of-distribution
// series under this mix.
func (m *FleetMix) IsUnknown(fleetJob int) bool { return fleetJob >= m.IDJobs }

// PlanFleetMix splits a driven fleet of the given size into labelled and
// out-of-distribution jobs: round(unknownFrac·jobs) fleet jobs (capped so
// at least one labelled job remains) replay UnknownJobs profiles seeded
// from seed, the rest replay the provided labelled sources.
func PlanFleetMix(sources []*Job, jobs int, unknownFrac float64, seed int64) (*FleetMix, error) {
	if unknownFrac < 0 || unknownFrac > 1 {
		return nil, fmt.Errorf("telemetry: unknown fraction %v must be in [0, 1]", unknownFrac)
	}
	if jobs < 1 {
		return nil, fmt.Errorf("telemetry: need at least one fleet job, got %d", jobs)
	}
	if len(sources) == 0 {
		return nil, errors.New("telemetry: no labelled source series")
	}
	unknown := int(math.Round(unknownFrac * float64(jobs)))
	if unknown >= jobs {
		unknown = jobs - 1 // keep at least one labelled job
	}
	m := &FleetMix{IDJobs: jobs - unknown, UnknownJobs: unknown, Sources: sources}
	if len(m.Sources) > m.IDJobs {
		m.Sources = m.Sources[:m.IDJobs]
	}
	if unknown > 0 {
		n := unknown
		if n > 64 {
			n = 64
		}
		m.Unknown = UnknownJobs(n, seed)
	}
	m.Fanout = make(map[int][]int, len(m.Sources)+len(m.Unknown))
	for k := 0; k < m.IDJobs; k++ {
		src := m.Sources[k%len(m.Sources)]
		m.Fanout[src.ID] = append(m.Fanout[src.ID], k)
	}
	for j := 0; j < unknown; j++ {
		src := m.Unknown[j%len(m.Unknown)]
		m.Fanout[src.ID] = append(m.Fanout[src.ID], m.IDJobs+j)
	}
	return m, nil
}

// UnknownJobs deterministically generates n out-of-distribution jobs from
// the seed: single-GPU workloads with ClassUnknown labels, IDs starting at
// UnknownIDBase, and profiles drawn from archetypes no Table I family
// produces. They plug into Replay and GPUWindow exactly like labelled
// jobs, so wccserve/wccload can blend them into a serving stream at any
// fraction and score the fleet's rejection behaviour.
func UnknownJobs(n int, seed int64) []*Job {
	rng := rand.New(rand.NewSource(seed ^ 0x0ddba11))
	out := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		jobSeed := rng.Int63()
		jr := rand.New(rand.NewSource(jobSeed))
		j := &Job{
			ID:       UnknownIDBase + i,
			Class:    ClassUnknown,
			Seed:     jobSeed,
			NumGPUs:  1,
			NumNodes: 1,
			Duration: 3600,
			Startup:  18 + 14*jr.Float64(),
			prof:     unknownProfile(jr),
		}
		j.utilOffset = []float64{jr.NormFloat64() * 1.2}
		j.tempOffset = []float64{jr.NormFloat64() * 1.5}
		j.powOffset = []float64{jr.NormFloat64() * 4}
		out = append(out, j)
	}
	return out
}
