package telemetry

import (
	"testing"
)

func TestUnknownJobsDeterministic(t *testing.T) {
	a := UnknownJobs(8, 7)
	b := UnknownJobs(8, 7)
	if len(a) != 8 {
		t.Fatalf("got %d jobs", len(a))
	}
	for i := range a {
		if a[i].Seed != b[i].Seed || a[i].prof != b[i].prof {
			t.Fatalf("job %d not deterministic", i)
		}
		if a[i].Class != ClassUnknown {
			t.Fatalf("job %d class %v, want ClassUnknown", i, a[i].Class)
		}
		if a[i].ID != UnknownIDBase+i {
			t.Fatalf("job %d ID %d, want %d", i, a[i].ID, UnknownIDBase+i)
		}
	}
	c := UnknownJobs(8, 8)
	same := 0
	for i := range a {
		if a[i].prof == c[i].prof {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestUnknownJobsStreamable(t *testing.T) {
	jobs := UnknownJobs(6, 3)
	// Windows extract anywhere inside the job, with finite plausible values.
	for _, j := range jobs {
		w, err := j.GPUWindow(0, 120, 60)
		if err != nil {
			t.Fatalf("job %d: %v", j.ID, err)
		}
		for i := 0; i < w.Rows; i++ {
			row := w.Row(i)
			if row[UtilizationGPUPct] < 0 || row[UtilizationGPUPct] > 100 {
				t.Fatalf("job %d sample %d: utilization %v out of range", j.ID, i, row[UtilizationGPUPct])
			}
			if row[MemoryUsedMiB] < 0 || row[MemoryUsedMiB] > GPUMemoryTotalMiB {
				t.Fatalf("job %d sample %d: memory %v out of range", j.ID, i, row[MemoryUsedMiB])
			}
		}
	}
	// They ride a Replay alongside labelled jobs without ID collisions.
	sim, err := NewSimulator(Config{Seed: 1, Scale: 0.02, GapRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	var mixed []*Job
	for _, j := range sim.Jobs() {
		if j.Duration >= 200 {
			mixed = append(mixed, j)
		}
		if len(mixed) == 4 {
			break
		}
	}
	mixed = append(mixed, jobs...)
	r, err := NewReplay(mixed, 0, 120, 180)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for {
		s, ok := r.Next()
		if !ok {
			break
		}
		seen[s.JobID] = true
	}
	for _, j := range jobs {
		if !seen[j.ID] {
			t.Fatalf("unknown job %d contributed no samples", j.ID)
		}
	}
}
