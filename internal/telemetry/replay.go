package telemetry

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ReplaySample is one telemetry sample attributed to a job, as a fleet
// ingest path consumes it.
type ReplaySample struct {
	JobID int
	// Tick is the sample index within the replayed span (absolute job time
	// start + Tick·GPUSampleDT).
	Tick int
	// Values holds the NumGPUSensors readings in Table III order. The slice
	// aliases the replay's backing storage; callers must not modify it and
	// should copy if they retain it past the next call.
	Values []float64
}

// Replay interleaves the telemetry of many jobs into one time-ordered
// sample stream: tick t emits sample t for every job whose series is still
// live at t, in job order. It is the multi-job feed for fleet monitoring —
// the streaming analogue of the offline dataset builder.
//
// Each job's series is materialised once up front with a single GPUWindow
// call, so Next is just slicing rows; a Replay is not safe for concurrent
// use, but its samples may be fanned out to any number of ingest goroutines.
type Replay struct {
	jobs  []*Job
	data  []*mat.Matrix // per job, n×NumGPUSensors
	start float64
	tick  int
	cur   int // next job position within the current tick
	left  int // samples not yet emitted
	total int
}

// NewReplay prepares a replay over the jobs' telemetry between absolute job
// times start and horizon seconds (each job capped by its own duration).
// A non-zero start skips the class-agnostic startup phase, matching how the
// challenge's middle/random datasets sample mid-job windows. gpu selects
// which of each job's GPU series is streamed, clamped to the job's GPU
// count. Jobs too short for a single sample after start are skipped.
func NewReplay(jobs []*Job, gpu int, start, horizon float64) (*Replay, error) {
	if len(jobs) == 0 {
		return nil, errors.New("telemetry: replay needs at least one job")
	}
	if start < 0 {
		return nil, fmt.Errorf("telemetry: negative replay start %.2fs", start)
	}
	if horizon < start+GPUSampleDT {
		return nil, fmt.Errorf("telemetry: replay span [%.2fs, %.2fs) shorter than one sample", start, horizon)
	}
	r := &Replay{start: start}
	for _, j := range jobs {
		n := int(math.Floor((math.Min(horizon, j.Duration) - start) / GPUSampleDT))
		if n < 1 {
			continue
		}
		g := gpu
		if g < 0 {
			g = 0
		}
		if g >= j.NumGPUs {
			g = j.NumGPUs - 1
		}
		w, err := j.GPUWindow(g, start, n)
		if err != nil {
			return nil, err
		}
		r.jobs = append(r.jobs, j)
		r.data = append(r.data, w)
		r.left += n
	}
	if len(r.jobs) == 0 {
		return nil, errors.New("telemetry: no job long enough to replay")
	}
	r.total = r.left
	return r, nil
}

// NumJobs returns how many jobs contribute samples.
func (r *Replay) NumJobs() int { return len(r.jobs) }

// TotalSamples returns the number of samples the replay will emit in total.
func (r *Replay) TotalSamples() int { return r.total }

// Remaining returns the number of samples not yet emitted.
func (r *Replay) Remaining() int { return r.left }

// Next returns the next sample in time order and false once the stream is
// exhausted. Jobs whose series ended simply stop contributing; the remaining
// jobs keep streaming.
func (r *Replay) Next() (ReplaySample, bool) {
	for r.left > 0 {
		if r.cur >= len(r.jobs) {
			r.cur = 0
			r.tick++
		}
		i := r.cur
		r.cur++
		if r.tick >= r.data[i].Rows {
			continue
		}
		r.left--
		return ReplaySample{JobID: r.jobs[i].ID, Tick: r.tick, Values: r.data[i].Row(r.tick)}, true
	}
	return ReplaySample{}, false
}
