package svm

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func codecData(seed int64) (*mat.Matrix, []int, *mat.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.New(90, 5)
	y := make([]int, x.Rows)
	for i := range y {
		y[i] = rng.Intn(3)
		row := x.Row(i)
		for c := range row {
			row[c] = rng.NormFloat64() + float64(y[i])*1.5
		}
	}
	eval := mat.New(40, 5)
	for i := range eval.Data {
		eval.Data[i] = rng.NormFloat64()
	}
	return x, y, eval
}

// TestKernelCodecRoundTrip pins Fit → Encode → Decode → Predict bit-identical
// labels for the one-vs-one SVC (its decision path has no randomness after
// fitting, so identical support vectors give identical votes and margins).
func TestKernelCodecRoundTrip(t *testing.T) {
	x, y, eval := codecData(21)
	c := New(Config{C: 1, Seed: 21})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSupportVectors() != c.NumSupportVectors() {
		t.Fatalf("decoded %d support vectors, want %d", got.NumSupportVectors(), c.NumSupportVectors())
	}
	if got.Gamma() != c.Gamma() {
		t.Fatalf("decoded gamma %v, want %v", got.Gamma(), c.Gamma())
	}
	want, err := c.Predict(eval)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Predict(eval)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if have[i] != want[i] {
			t.Fatalf("row %d: label %d vs %d", i, have[i], want[i])
		}
	}
}

// TestLinearCodecRoundTrip pins the one-vs-rest linear machine's decision
// scores bit-identical through a round trip.
func TestLinearCodecRoundTrip(t *testing.T) {
	x, y, eval := codecData(22)
	c := NewLinear(LinearConfig{C: 1, Epochs: 40, Seed: 22})
	if err := c.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLinear(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.DecisionFunction(eval)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.DecisionFunction(eval)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if have.Data[i] != want.Data[i] {
			t.Fatalf("score[%d]: %v vs %v (not bit-identical)", i, have.Data[i], want.Data[i])
		}
	}
}

func TestEncodeUnfittedAndCustomKernel(t *testing.T) {
	if err := New(DefaultConfig()).Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("encoding an unfitted SVC should fail")
	}
	if err := NewLinear(DefaultLinearConfig()).Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("encoding an unfitted linear SVC should fail")
	}

	x, y, _ := codecData(23)
	c := New(Config{C: 1, Kernel: customKernel{}, Seed: 23})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := c.Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("custom kernels should be rejected at encode time")
	}
}

func TestDecodeTruncations(t *testing.T) {
	x, y, _ := codecData(24)
	c := New(Config{C: 1, Seed: 24})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 509 {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

type customKernel struct{}

func (customKernel) Compute(a, b []float64) float64 { return mat.Dot(a, b) + 1 }
func (customKernel) Name() string                   { return "custom" }
