// Package svm implements support-vector classification: a kernel C-SVC
// trained with sequential minimal optimization (SMO) and one-vs-one
// multiclass voting — the semantics of scikit-learn's SVC used by the
// paper's SVM baselines — plus a fast linear one-vs-rest variant for
// ablations.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mat"
)

// Kernel computes inner products in feature space.
type Kernel interface {
	Compute(a, b []float64) float64
	Name() string
}

// RBFKernel is exp(-γ‖a-b‖²). Gamma ≤ 0 requests scikit-learn's "scale"
// heuristic, resolved when fitting: γ = 1/(d·Var(X)).
type RBFKernel struct{ Gamma float64 }

// Compute evaluates the kernel for two feature rows.
func (k RBFKernel) Compute(a, b []float64) float64 {
	var d2 float64
	for i, v := range a {
		d := v - b[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// Name identifies the kernel in reports.
func (k RBFKernel) Name() string { return "rbf" }

// LinearKernel is the plain dot product.
type LinearKernel struct{}

// Compute evaluates the kernel for two feature rows.
func (LinearKernel) Compute(a, b []float64) float64 { return mat.Dot(a, b) }

// Name identifies the kernel in reports.
func (LinearKernel) Name() string { return "linear" }

// Config controls SVC training.
type Config struct {
	// C is the soft-margin penalty (the paper grid-searches 0.1, 1, 10).
	C float64
	// Kernel defaults to RBF with the "scale" gamma when nil.
	Kernel Kernel
	// Tol is the KKT violation tolerance.
	Tol float64
	// MaxPasses is the number of full no-change passes before convergence
	// is declared.
	MaxPasses int
	// MaxIter caps total optimisation sweeps as a safety net.
	MaxIter int
	// Seed drives SMO's random partner selection.
	Seed int64
}

// DefaultConfig mirrors scikit-learn's SVC defaults.
func DefaultConfig() Config {
	return Config{C: 1, Tol: 1e-3, MaxPasses: 3, MaxIter: 200}
}

// binarySVM is one SMO-trained two-class machine.
type binarySVM struct {
	svX    *mat.Matrix
	svY    []float64
	alpha  []float64
	b      float64
	kernel Kernel
}

// decision evaluates Σ αᵢyᵢK(xᵢ,x) + b.
func (m *binarySVM) decision(row []float64) float64 {
	s := m.b
	for i := 0; i < m.svX.Rows; i++ {
		s += m.alpha[i] * m.svY[i] * m.kernel.Compute(m.svX.Row(i), row)
	}
	return s
}

// Classifier is a fitted one-vs-one multiclass SVC.
type Classifier struct {
	cfg      Config
	classes  []int
	machines map[[2]int]*binarySVM
	gamma    float64 // resolved RBF gamma (0 for non-RBF kernels)
	numFeats int
}

// New returns an unfitted classifier.
func New(cfg Config) *Classifier {
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-3
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = 3
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200
	}
	return &Classifier{cfg: cfg}
}

// GammaScale computes scikit-learn's "scale" heuristic: 1/(d·Var(X)) over
// all matrix entries.
func GammaScale(x *mat.Matrix) float64 {
	v := mat.Variance(x.Data)
	if v <= 0 {
		v = 1
	}
	return 1 / (float64(x.Cols) * v)
}

// Fit trains C(C-1)/2 pairwise machines.
func (c *Classifier) Fit(x *mat.Matrix, y []int) error {
	if x.Rows != len(y) {
		return fmt.Errorf("svm: %d rows vs %d labels", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return errors.New("svm: empty training set")
	}
	c.numFeats = x.Cols

	kernel := c.cfg.Kernel
	if kernel == nil {
		kernel = RBFKernel{}
	}
	if rbf, ok := kernel.(RBFKernel); ok && rbf.Gamma <= 0 {
		c.gamma = GammaScale(x)
		kernel = RBFKernel{Gamma: c.gamma}
	}

	seen := map[int]bool{}
	for _, v := range y {
		seen[v] = true
	}
	c.classes = c.classes[:0]
	for v := range seen {
		c.classes = append(c.classes, v)
	}
	sort.Ints(c.classes)
	if len(c.classes) < 2 {
		return errors.New("svm: need at least two classes")
	}

	byClass := map[int][]int{}
	for i, v := range y {
		byClass[v] = append(byClass[v], i)
	}

	c.machines = make(map[[2]int]*binarySVM)
	for ai := 0; ai < len(c.classes); ai++ {
		for bi := ai + 1; bi < len(c.classes); bi++ {
			ca, cb := c.classes[ai], c.classes[bi]
			idx := append(append([]int{}, byClass[ca]...), byClass[cb]...)
			sub := mat.New(len(idx), x.Cols)
			ys := make([]float64, len(idx))
			for k, i := range idx {
				copy(sub.Row(k), x.Row(i))
				if y[i] == ca {
					ys[k] = 1
				} else {
					ys[k] = -1
				}
			}
			m, err := trainSMO(sub, ys, kernel, c.cfg)
			if err != nil {
				return fmt.Errorf("svm: pair (%d,%d): %w", ca, cb, err)
			}
			c.machines[[2]int{ca, cb}] = m
		}
	}
	return nil
}

// trainSMO runs simplified SMO (Platt) with a precomputed kernel matrix.
func trainSMO(x *mat.Matrix, y []float64, kernel Kernel, cfg Config) (*binarySVM, error) {
	n := x.Rows
	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := kernel.Compute(x.Row(i), x.Row(j))
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}

	alpha := make([]float64, n)
	b := 0.0
	rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))

	f := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * y[j] * k.At(j, i)
			}
		}
		return s
	}

	passes := 0
	for iter := 0; passes < cfg.MaxPasses && iter < cfg.MaxIter; iter++ {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if !((y[i]*ei < -cfg.Tol && alpha[i] < cfg.C) || (y[i]*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - y[j]

			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cfg.C)
				hi = math.Min(cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*k.At(i, j) - k.At(i, i) - k.At(j, j)
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			ajNew = mat.Clip(ajNew, lo, hi)
			if math.Abs(ajNew-aj) < 1e-5 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)

			b1 := b - ei - y[i]*(aiNew-ai)*k.At(i, i) - y[j]*(ajNew-aj)*k.At(i, j)
			b2 := b - ej - y[i]*(aiNew-ai)*k.At(i, j) - y[j]*(ajNew-aj)*k.At(j, j)
			switch {
			case aiNew > 0 && aiNew < cfg.C:
				b = b1
			case ajNew > 0 && ajNew < cfg.C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			alpha[i], alpha[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Keep only support vectors.
	var svIdx []int
	for i, a := range alpha {
		if a > 1e-8 {
			svIdx = append(svIdx, i)
		}
	}
	m := &binarySVM{
		svX:    mat.New(len(svIdx), x.Cols),
		svY:    make([]float64, len(svIdx)),
		alpha:  make([]float64, len(svIdx)),
		b:      b,
		kernel: kernel,
	}
	for kk, i := range svIdx {
		copy(m.svX.Row(kk), x.Row(i))
		m.svY[kk] = y[i]
		m.alpha[kk] = alpha[i]
	}
	return m, nil
}

// Predict labels rows by one-vs-one voting; ties break on summed decision
// margins (libsvm's behaviour).
func (c *Classifier) Predict(x *mat.Matrix) ([]int, error) {
	if c.machines == nil {
		return nil, errors.New("svm: not fitted")
	}
	if x.Cols != c.numFeats {
		return nil, fmt.Errorf("svm: %d features, fitted on %d", x.Cols, c.numFeats)
	}
	out := make([]int, x.Rows)
	votes := make(map[int]float64, len(c.classes))
	margin := make(map[int]float64, len(c.classes))
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for k := range votes {
			delete(votes, k)
		}
		for k := range margin {
			delete(margin, k)
		}
		for pair, m := range c.machines {
			d := m.decision(row)
			if d >= 0 {
				votes[pair[0]]++
			} else {
				votes[pair[1]]++
			}
			margin[pair[0]] += d
			margin[pair[1]] -= d
		}
		best := c.classes[0]
		for _, cls := range c.classes[1:] {
			if votes[cls] > votes[best] ||
				(votes[cls] == votes[best] && margin[cls] > margin[best]) {
				best = cls
			}
		}
		out[i] = best
	}
	return out, nil
}

// NumSupportVectors totals support vectors across pairwise machines.
func (c *Classifier) NumSupportVectors() int {
	total := 0
	for _, m := range c.machines {
		total += m.svX.Rows
	}
	return total
}

// Gamma returns the resolved RBF gamma (0 when not using RBF "scale").
func (c *Classifier) Gamma() float64 { return c.gamma }
