package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func blobs(n, k int, spread float64, seed int64) (*mat.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		angle := 2 * math.Pi * float64(c) / float64(k)
		x.Set(i, 0, 4*math.Cos(angle)+rng.NormFloat64()*spread)
		x.Set(i, 1, 4*math.Sin(angle)+rng.NormFloat64()*spread)
		y[i] = c
	}
	return x, y
}

// ringData builds a radially-separable two-class problem a linear machine
// cannot solve but RBF can.
func ringData(n int, seed int64) (*mat.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		var r float64
		if i%2 == 0 {
			r = 1 + rng.NormFloat64()*0.1
		} else {
			r = 3 + rng.NormFloat64()*0.1
			y[i] = 1
		}
		a := rng.Float64() * 2 * math.Pi
		x.Set(i, 0, r*math.Cos(a))
		x.Set(i, 1, r*math.Sin(a))
	}
	return x, y
}

func accuracy(t *testing.T, pred, y []int) float64 {
	t.Helper()
	c := 0
	for i, p := range pred {
		if p == y[i] {
			c++
		}
	}
	return float64(c) / float64(len(y))
}

func TestSVCBinaryLinearSeparable(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{-2, 0}, {-3, 1}, {-2.5, -1}, {2, 0}, {3, 1}, {2.5, -1}})
	y := []int{0, 0, 0, 1, 1, 1}
	c := New(Config{C: 1, Kernel: LinearKernel{}, Seed: 1})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := c.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, pred, y); acc != 1 {
		t.Errorf("separable accuracy %v", acc)
	}
}

func TestSVCRBFSolvesRings(t *testing.T) {
	x, y := ringData(200, 2)
	c := New(Config{C: 10, Seed: 1})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := ringData(100, 3)
	pred, err := c.Predict(xt)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, pred, yt); acc < 0.95 {
		t.Errorf("RBF ring accuracy %v", acc)
	}
	if c.Gamma() <= 0 {
		t.Error("scale gamma not resolved")
	}
}

func TestLinearCannotSolveRings(t *testing.T) {
	// Sanity for the RBF test: the same data defeats a linear machine.
	x, y := ringData(200, 2)
	c := NewLinear(DefaultLinearConfig())
	if err := c.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	pred, _ := c.Predict(x)
	if acc := accuracy(t, pred, y); acc > 0.8 {
		t.Errorf("linear machine should fail on rings, got %v", acc)
	}
}

func TestSVCMulticlassOvO(t *testing.T) {
	x, y := blobs(240, 4, 0.6, 5)
	c := New(Config{C: 1, Seed: 2})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := len(c.machines); got != 6 {
		t.Errorf("4 classes need 6 OvO machines, got %d", got)
	}
	xt, yt := blobs(120, 4, 0.6, 6)
	pred, err := c.Predict(xt)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, pred, yt); acc < 0.95 {
		t.Errorf("multiclass accuracy %v", acc)
	}
}

func TestSVCSupportVectorsSubset(t *testing.T) {
	x, y := blobs(200, 2, 0.5, 7)
	c := New(Config{C: 1, Seed: 3})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if c.NumSupportVectors() == 0 {
		t.Fatal("no support vectors kept")
	}
	if c.NumSupportVectors() >= 200 {
		t.Errorf("all %d points became support vectors on well-separated data", c.NumSupportVectors())
	}
}

func TestSVCErrors(t *testing.T) {
	c := New(DefaultConfig())
	if err := c.Fit(mat.New(2, 2), []int{0}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := c.Fit(mat.New(0, 2), nil); err == nil {
		t.Error("empty training set should fail")
	}
	if err := c.Fit(mat.New(3, 2), []int{1, 1, 1}); err == nil {
		t.Error("single class should fail")
	}
	if _, err := c.Predict(mat.New(1, 2)); err == nil {
		t.Error("predict before fit should fail")
	}
	x, y := blobs(40, 2, 0.5, 8)
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(mat.New(1, 5)); err == nil {
		t.Error("feature mismatch should fail")
	}
}

func TestGammaScale(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{0, 0}, {2, 2}})
	// All entries: 0,0,2,2 → var = 1, d=2 → gamma = 0.5.
	if g := GammaScale(x); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("GammaScale = %v, want 0.5", g)
	}
	if g := GammaScale(mat.New(2, 3)); g != 1.0/3 {
		t.Errorf("GammaScale on constant data = %v, want 1/3", g)
	}
}

func TestSVCRegularizationEffect(t *testing.T) {
	// Small C must keep more (bounded) support vectors than large C on
	// overlapping data.
	x, y := blobs(160, 2, 2.0, 9)
	weak := New(Config{C: 0.01, Seed: 4})
	if err := weak.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	strong := New(Config{C: 100, Seed: 4})
	if err := strong.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if weak.NumSupportVectors() <= strong.NumSupportVectors() {
		t.Errorf("C=0.01 kept %d SVs, C=100 kept %d; expected more for small C",
			weak.NumSupportVectors(), strong.NumSupportVectors())
	}
}

func TestLinearClassifierBlobs(t *testing.T) {
	x, y := blobs(300, 3, 0.7, 11)
	c := NewLinear(LinearConfig{C: 1, Epochs: 200, Tol: 1e-4, Seed: 5})
	if err := c.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	xt, yt := blobs(150, 3, 0.7, 12)
	pred, err := c.Predict(xt)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, pred, yt); acc < 0.93 {
		t.Errorf("linear OvR accuracy %v", acc)
	}
}

func TestLinearDecisionFunctionShape(t *testing.T) {
	x, y := blobs(60, 3, 0.5, 13)
	c := NewLinear(DefaultLinearConfig())
	if err := c.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	df, err := c.DecisionFunction(x)
	if err != nil {
		t.Fatal(err)
	}
	if df.Rows != 60 || df.Cols != 3 {
		t.Errorf("decision shape %dx%d", df.Rows, df.Cols)
	}
}

func TestLinearErrors(t *testing.T) {
	c := NewLinear(DefaultLinearConfig())
	if err := c.Fit(mat.New(2, 2), []int{0}, 2); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := c.Fit(mat.New(0, 2), nil, 2); err == nil {
		t.Error("empty set should fail")
	}
	if err := c.Fit(mat.New(2, 2), []int{0, 0}, 1); err == nil {
		t.Error("single class should fail")
	}
	if _, err := c.Predict(mat.New(1, 2)); err == nil {
		t.Error("predict before fit should fail")
	}
}

func TestSVCDeterminism(t *testing.T) {
	x, y := blobs(100, 3, 1.0, 15)
	c1 := New(Config{C: 1, Seed: 9})
	c2 := New(Config{C: 1, Seed: 9})
	if err := c1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := c2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p1, _ := c1.Predict(x)
	p2, _ := c2.Predict(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different SVMs")
		}
	}
}
