package svm

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/wire"
)

// codecVersion is the svm payload format (shared by the kernel and linear
// classifiers); bump on incompatible layout changes so old readers fail
// descriptively instead of misloading.
const codecVersion = 1

// Kernel tags on the wire. Only the built-in kernels can be serialised;
// custom Kernel implementations are rejected at encode time.
const (
	kernelRBF    = uint8(1)
	kernelLinear = uint8(2)
)

func encodeKernel(ww *wire.Writer, k Kernel) error {
	switch kk := k.(type) {
	case RBFKernel:
		ww.U8(kernelRBF)
		ww.F64(kk.Gamma)
	case LinearKernel:
		ww.U8(kernelLinear)
	default:
		return fmt.Errorf("svm: cannot serialise custom kernel %T", k)
	}
	return nil
}

func decodeKernel(rr *wire.Reader) (Kernel, error) {
	switch tag := rr.U8(); tag {
	case kernelRBF:
		return RBFKernel{Gamma: rr.F64()}, nil
	case kernelLinear:
		return LinearKernel{}, nil
	default:
		if err := rr.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("svm: unknown kernel tag %d", tag)
	}
}

// Encode serialises the fitted one-vs-one SVC: config, the resolved kernel,
// and every pairwise machine's support vectors, coefficients and bias.
// Machines are written in sorted pair order so the encoding is deterministic.
func (c *Classifier) Encode(w io.Writer) error {
	if c.machines == nil {
		return errors.New("svm: cannot encode an unfitted classifier")
	}
	ww := wire.NewWriter(w)
	ww.U16(codecVersion)
	ww.F64(c.cfg.C)
	ww.F64(c.cfg.Tol)
	ww.Int(c.cfg.MaxPasses)
	ww.Int(c.cfg.MaxIter)
	ww.I64(c.cfg.Seed)
	ww.F64(c.gamma)
	ww.Int(c.numFeats)
	ww.Ints(c.classes)

	pairs := make([][2]int, 0, len(c.machines))
	for p := range c.machines {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	ww.Int(len(pairs))
	for _, p := range pairs {
		m := c.machines[p]
		ww.Int(p[0])
		ww.Int(p[1])
		if err := encodeKernel(ww, m.kernel); err != nil {
			return err
		}
		ww.Matrix(m.svX)
		ww.F64s(m.svY)
		ww.F64s(m.alpha)
		ww.F64(m.b)
	}
	return ww.Err()
}

// Decode reads a classifier previously written by Encode.
func Decode(r io.Reader) (*Classifier, error) {
	rr := wire.NewReader(r)
	if v := rr.U16(); rr.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("svm: unsupported codec version %d (this build reads %d)", v, codecVersion)
	}
	c := &Classifier{}
	c.cfg.C = rr.F64()
	c.cfg.Tol = rr.F64()
	c.cfg.MaxPasses = rr.Int()
	c.cfg.MaxIter = rr.Int()
	c.cfg.Seed = rr.I64()
	c.gamma = rr.F64()
	c.numFeats = rr.Int()
	c.classes = rr.Ints()
	numMachines := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if c.numFeats < 1 || len(c.classes) < 2 {
		return nil, fmt.Errorf("svm: corrupt header (%d features, %d classes)", c.numFeats, len(c.classes))
	}
	want := len(c.classes) * (len(c.classes) - 1) / 2
	if numMachines != want {
		return nil, fmt.Errorf("svm: %d machines for %d classes, want %d", numMachines, len(c.classes), want)
	}
	c.machines = make(map[[2]int]*binarySVM, numMachines)
	for i := 0; i < numMachines; i++ {
		a := rr.Int()
		b := rr.Int()
		kernel, err := decodeKernel(rr)
		if err != nil {
			return nil, err
		}
		m := &binarySVM{kernel: kernel}
		m.svX = rr.Matrix()
		m.svY = rr.F64s()
		m.alpha = rr.F64s()
		m.b = rr.F64()
		if err := rr.Err(); err != nil {
			return nil, err
		}
		if m.svX.Cols != c.numFeats || len(m.svY) != m.svX.Rows || len(m.alpha) != m.svX.Rows {
			return nil, fmt.Errorf("svm: machine (%d,%d) has inconsistent support-vector shapes", a, b)
		}
		c.machines[[2]int{a, b}] = m
	}
	return c, nil
}

// Encode serialises the fitted linear one-vs-rest classifier: config, weight
// matrix, and biases.
func (c *LinearClassifier) Encode(w io.Writer) error {
	if c.W == nil {
		return errors.New("svm: cannot encode an unfitted linear classifier")
	}
	ww := wire.NewWriter(w)
	ww.U16(codecVersion)
	ww.F64(c.cfg.C)
	ww.Int(c.cfg.Epochs)
	ww.F64(c.cfg.Tol)
	ww.I64(c.cfg.Seed)
	ww.Int(c.numFeats)
	ww.Int(c.classes)
	ww.Matrix(c.W)
	ww.F64s(c.B)
	return ww.Err()
}

// DecodeLinear reads a linear classifier previously written by Encode.
func DecodeLinear(r io.Reader) (*LinearClassifier, error) {
	rr := wire.NewReader(r)
	if v := rr.U16(); rr.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("svm: unsupported codec version %d (this build reads %d)", v, codecVersion)
	}
	c := &LinearClassifier{}
	c.cfg.C = rr.F64()
	c.cfg.Epochs = rr.Int()
	c.cfg.Tol = rr.F64()
	c.cfg.Seed = rr.I64()
	c.numFeats = rr.Int()
	c.classes = rr.Int()
	c.W = rr.Matrix()
	c.B = rr.F64s()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if c.classes < 2 || c.numFeats < 1 ||
		c.W.Rows != c.classes || c.W.Cols != c.numFeats || len(c.B) != c.classes {
		return nil, errors.New("svm: corrupt linear classifier shapes")
	}
	return c, nil
}
