package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// LinearConfig controls the linear one-vs-rest SVC.
type LinearConfig struct {
	// C is the soft-margin penalty.
	C float64
	// Epochs bounds dual coordinate-descent sweeps.
	Epochs int
	// Tol stops a binary problem early when the largest projected-gradient
	// violation in a sweep falls below it.
	Tol float64
	// Seed drives coordinate shuffling.
	Seed int64
}

// DefaultLinearConfig mirrors liblinear defaults.
func DefaultLinearConfig() LinearConfig {
	return LinearConfig{C: 1, Epochs: 100, Tol: 1e-4}
}

// LinearClassifier is a one-vs-rest linear SVM trained by dual coordinate
// descent on the L1-loss (hinge) objective — the algorithm behind
// liblinear. It trades the kernel SVC's flexibility for O(n·d) training,
// and serves as this project's speed ablation against the RBF machine.
type LinearClassifier struct {
	cfg      LinearConfig
	W        *mat.Matrix // numClasses × d
	B        []float64
	numFeats int
	classes  int
}

// NewLinear returns an unfitted linear classifier.
func NewLinear(cfg LinearConfig) *LinearClassifier {
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	return &LinearClassifier{cfg: cfg}
}

// Fit trains numClasses one-vs-rest binary machines.
func (c *LinearClassifier) Fit(x *mat.Matrix, y []int, numClasses int) error {
	if x.Rows != len(y) {
		return fmt.Errorf("svm: %d rows vs %d labels", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return errors.New("svm: empty training set")
	}
	if numClasses < 2 {
		return errors.New("svm: need at least two classes")
	}
	c.numFeats = x.Cols
	c.classes = numClasses
	c.W = mat.New(numClasses, x.Cols)
	c.B = make([]float64, numClasses)

	// Squared row norms, shared by every binary problem. The +1 accounts
	// for the bias absorbed as a constant feature.
	qd := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		qd[i] = mat.Dot(x.Row(i), x.Row(i)) + 1
	}

	for cls := 0; cls < numClasses; cls++ {
		c.fitBinary(x, y, cls, qd)
	}
	return nil
}

// fitBinary solves one one-vs-rest problem with dual coordinate descent.
func (c *LinearClassifier) fitBinary(x *mat.Matrix, y []int, cls int, qd []float64) {
	n := x.Rows
	d := x.Cols
	w := make([]float64, d)
	var b float64
	alpha := make([]float64, n)
	lab := make([]float64, n)
	for i, v := range y {
		if v == cls {
			lab[i] = 1
		} else {
			lab[i] = -1
		}
	}
	rng := rand.New(rand.NewSource(c.cfg.Seed + int64(cls)*104729))
	order := rng.Perm(n)

	for epoch := 0; epoch < c.cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(a, bIdx int) { order[a], order[bIdx] = order[bIdx], order[a] })
		maxViolation := 0.0
		for _, i := range order {
			row := x.Row(i)
			g := lab[i]*(mat.Dot(w, row)+b) - 1
			pg := g
			switch {
			case alpha[i] == 0:
				pg = math.Min(g, 0)
			case alpha[i] == c.cfg.C:
				pg = math.Max(g, 0)
			}
			if math.Abs(pg) > maxViolation {
				maxViolation = math.Abs(pg)
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			alpha[i] = mat.Clip(old-g/qd[i], 0, c.cfg.C)
			delta := (alpha[i] - old) * lab[i]
			if delta != 0 {
				mat.Axpy(delta, row, w)
				b += delta
			}
		}
		if maxViolation < c.cfg.Tol {
			break
		}
	}
	copy(c.W.Row(cls), w)
	c.B[cls] = b
}

// DecisionFunction returns the numClasses per-row scores.
func (c *LinearClassifier) DecisionFunction(x *mat.Matrix) (*mat.Matrix, error) {
	if c.W == nil {
		return nil, errors.New("svm: not fitted")
	}
	if x.Cols != c.numFeats {
		return nil, fmt.Errorf("svm: %d features, fitted on %d", x.Cols, c.numFeats)
	}
	out := mat.New(x.Rows, c.classes)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		dst := out.Row(i)
		for cls := 0; cls < c.classes; cls++ {
			dst[cls] = mat.Dot(c.W.Row(cls), row) + c.B[cls]
		}
	}
	return out, nil
}

// Predict labels rows by the highest one-vs-rest score.
func (c *LinearClassifier) Predict(x *mat.Matrix) ([]int, error) {
	scores, err := c.DecisionFunction(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, x.Rows)
	for i := range out {
		out[i] = mat.ArgMax(scores.Row(i))
	}
	return out, nil
}
