package wire

import "testing"

// TestIngestDecoderZeroAlloc pins the //wcc:hotpath contract on the
// binary frame decoder: iterating a whole body with a pre-grown arena
// allocates nothing — not per record and not per body. The decoder is
// constructed by value on the stack, matching how parseBinary borrows a
// pooled arena per request.
func TestIngestDecoderZeroAlloc(t *testing.T) {
	vals := []float64{1, 2.5, -3, 0.125, 9e9, -0.25, 7}
	var body []byte
	const records = 16
	for i := 0; i < records; i++ {
		body = AppendIngestRecord(body, int64(i), vals)
	}
	arena := make([]float64, 0, records*len(vals))

	bad := false
	allocs := testing.AllocsPerRun(100, func() {
		dec := IngestDecoder{Arena: arena[:0], buf: body}
		n := 0
		for {
			rec, ok := dec.Next()
			if !ok {
				break
			}
			if rec.Err != nil || len(rec.Values) != len(vals) {
				bad = true
			}
			n++
		}
		if n != records || dec.Err() != nil {
			bad = true
		}
	})
	if bad {
		t.Fatal("decoder rejected the well-formed body during measurement")
	}
	if allocs != 0 {
		t.Fatalf("IngestDecoder.Next allocates %.1f times per body, want 0", allocs)
	}
}
