package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary ingest framing: the compact alternative to NDJSON on
// POST /v1/ingest, selected by Content-Type. A body is a sequence of
// length-prefixed records, each one sample:
//
//	u32  payload length L (little-endian), counting only the bytes after
//	     the prefix; a well-formed record has L = 10 + 8·n
//	i64  job id (little-endian)
//	u16  value count n (little-endian)
//	n×f64  sensor values as IEEE-754 bits (little-endian)
//
// Floats travel as raw bits, so a decoded sample is bit-identical to what
// the producer held — including NaN and ±Inf payloads, which the fleet's
// sanity gate then rejects per record exactly as it does per NDJSON line.
//
// Error handling mirrors the NDJSON contract: a record-local defect (a
// zero-length frame, a payload too short for its header, a length that
// disagrees with the declared value count) rejects that record and
// decoding continues at the next prefix, because the prefix still says
// where that is. A defect that breaks framing itself — a truncated prefix
// or payload, or a length prefix beyond MaxIngestFramePayload — is fatal:
// every later byte boundary is untrustworthy, so the decoder stops and the
// caller rejects the whole batch, just as a too-long NDJSON line does.

const (
	// IngestContentType selects the binary framing on POST /v1/ingest.
	IngestContentType = "application/x-wcc-ingest"
	// MaxIngestFramePayload caps one record's payload, mirroring the
	// serving layer's NDJSON line cap; larger prefixes are treated as
	// corruption, not ambition.
	MaxIngestFramePayload = 1 << 20
	// MaxIngestValues is the widest sample one record can carry, fixed by
	// the u16 count field.
	MaxIngestValues = 1<<16 - 1

	// ingestHeaderBytes is the fixed payload prefix: i64 job + u16 count.
	ingestHeaderBytes = 10
)

// AppendIngestRecord appends one framed sample to dst and returns the
// extended slice. It panics if values exceeds MaxIngestValues — a producer
// bug, not a wire condition.
func AppendIngestRecord(dst []byte, job int64, values []float64) []byte {
	if len(values) > MaxIngestValues {
		panic(fmt.Sprintf("wire: %d values exceed the u16 record limit %d", len(values), MaxIngestValues))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ingestHeaderBytes+8*len(values)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(job))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(values)))
	for _, v := range values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// IngestRecord is one decoded record. Err non-nil means the record was
// rejected but framing survived; Values aliases the decoder's Arena.
type IngestRecord struct {
	// Index is the record's 1-based position in the stream, the binary
	// analogue of an NDJSON line number.
	Index  int
	Job    int64
	Values []float64
	Err    error
}

// IngestDecoder iterates the records of one binary ingest body without
// allocating per record: decoded values are appended to Arena, which a
// caller may preset from a pool to amortise across requests.
type IngestDecoder struct {
	// Arena receives every decoded value; each record's Values slice
	// aliases its tail. Growth may reallocate, but earlier records keep
	// their (still-valid) backing.
	Arena []float64

	buf   []byte
	off   int
	idx   int
	fatal error
}

// NewIngestDecoder decodes records from one complete request body.
func NewIngestDecoder(buf []byte) *IngestDecoder { return &IngestDecoder{buf: buf} }

// Next returns the next record. ok=false means iteration is over: either
// the body was consumed cleanly or framing broke — check Err. A returned
// record with a non-nil Err was rejected record-locally; iteration
// continues.
//
//wcc:hotpath zero allocations per call, pinned by an AllocsPerRun gate
func (d *IngestDecoder) Next() (IngestRecord, bool) {
	if d.fatal != nil || d.off >= len(d.buf) {
		return IngestRecord{}, false
	}
	if len(d.buf)-d.off < 4 {
		d.fatal = fmt.Errorf("truncated length prefix after record %d (%d trailing bytes)", d.idx, len(d.buf)-d.off)
		return IngestRecord{}, false
	}
	n := int(binary.LittleEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	d.idx++
	rec := IngestRecord{Index: d.idx}
	if n == 0 {
		rec.Err = errors.New("zero-length frame")
		return rec, true
	}
	if n > MaxIngestFramePayload {
		d.fatal = fmt.Errorf("record %d declares a %d-byte payload, over the %d-byte cap", d.idx, n, MaxIngestFramePayload)
		return IngestRecord{}, false
	}
	if len(d.buf)-d.off < n {
		d.fatal = fmt.Errorf("truncated frame: record %d declares %d payload bytes, %d remain", d.idx, n, len(d.buf)-d.off)
		return IngestRecord{}, false
	}
	payload := d.buf[d.off : d.off+n]
	d.off += n
	if n < ingestHeaderBytes {
		rec.Err = fmt.Errorf("frame payload is %d bytes, shorter than the %d-byte header", n, ingestHeaderBytes)
		return rec, true
	}
	count := int(binary.LittleEndian.Uint16(payload[8:]))
	if n != ingestHeaderBytes+8*count {
		rec.Err = fmt.Errorf("frame payload is %d bytes but declares %d values (want %d bytes)", n, count, ingestHeaderBytes+8*count)
		return rec, true
	}
	start := len(d.Arena)
	for i := 0; i < count; i++ {
		bits := binary.LittleEndian.Uint64(payload[ingestHeaderBytes+8*i:])
		d.Arena = append(d.Arena, math.Float64frombits(bits))
	}
	rec.Job = int64(binary.LittleEndian.Uint64(payload))
	rec.Values = d.Arena[start:]
	return rec, true
}

// Err returns the fatal framing error that ended iteration, or nil after a
// clean end of body.
func (d *IngestDecoder) Err() error { return d.fatal }
