package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/mat"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(7)
	w.U16(65000)
	w.U32(1 << 30)
	w.U64(1 << 60)
	w.I64(-42)
	w.Int(-7)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.String("hello, wcc")
	w.String("")
	w.F64s(nil)
	w.F64s([]float64{1.5, -2.25, 0})
	w.Ints([]int{3, -1, 0})
	m := mat.New(2, 3)
	for i := range m.Data {
		m.Data[i] = float64(i) * 1.25
	}
	w.Matrix(m)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U16(); got != 65000 {
		t.Errorf("U16 = %d", got)
	}
	if got := r.U32(); got != 1<<30 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := r.String(); got != "hello, wcc" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := r.F64s(); len(got) != 0 {
		t.Errorf("empty F64s = %v", got)
	}
	wantF := []float64{1.5, -2.25, 0}
	gotF := r.F64s()
	if len(gotF) != len(wantF) {
		t.Fatalf("F64s = %v", gotF)
	}
	for i := range wantF {
		if gotF[i] != wantF[i] {
			t.Errorf("F64s[%d] = %v", i, gotF[i])
		}
	}
	wantI := []int{3, -1, 0}
	gotI := r.Ints()
	if len(gotI) != len(wantI) {
		t.Fatalf("Ints = %v", gotI)
	}
	for i := range wantI {
		if gotI[i] != wantI[i] {
			t.Errorf("Ints[%d] = %d", i, gotI[i])
		}
	}
	gm := r.Matrix()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if gm.Rows != 2 || gm.Cols != 3 {
		t.Fatalf("matrix shape %dx%d", gm.Rows, gm.Cols)
	}
	for i := range m.Data {
		if gm.Data[i] != m.Data[i] {
			t.Errorf("matrix[%d] = %v", i, gm.Data[i])
		}
	}
}

func TestNaNBitPatternPreserved(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payload := math.Float64frombits(0x7ff8_0000_dead_beef) // NaN with payload
	w.F64(payload)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if got := math.Float64bits(r.F64()); got != 0x7ff8_0000_dead_beef {
		t.Errorf("NaN payload = %#x", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedReads(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.F64s([]float64{1, 2, 3})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		r.F64s()
		if r.Err() == nil {
			t.Fatalf("cut at %d: expected error", cut)
		}
	}
}

func TestInsaneLengthRejected(t *testing.T) {
	var raw [8]byte
	binary.LittleEndian.PutUint64(raw[:], 1<<50)
	r := NewReader(bytes.NewReader(raw[:]))
	r.F64s()
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "sanity limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestStickyErrors(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	r.U64()
	first := r.Err()
	if first == nil {
		t.Fatal("expected error on empty input")
	}
	r.F64s()
	_ = r.String()
	if r.Err() != first {
		t.Error("reader error not sticky")
	}

	w := NewWriter(failWriter{})
	w.U64(1)
	werr := w.Err()
	if werr == nil {
		t.Fatal("expected write error")
	}
	w.String("x")
	if w.Err() != werr {
		t.Error("writer error not sticky")
	}
}

func TestMatrixShapeOverflowRejected(t *testing.T) {
	// rows = cols = 2^32: the product overflows int64 to 0, which would
	// match an empty data slice if dimensions weren't capped first.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(1 << 32)
	w.I64(1 << 32)
	w.F64s(nil)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.Matrix()
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "corrupt matrix shape") {
		t.Fatalf("err = %v", err)
	}
}

func TestCorruptBoolAndMatrix(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{9}))
	r.Bool()
	if r.Err() == nil {
		t.Error("corrupt bool accepted")
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(2)
	w.Int(3)
	w.F64s([]float64{1, 2}) // 2 values for a 2x3 shape
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r = NewReader(&buf)
	r.Matrix()
	if r.Err() == nil {
		t.Error("corrupt matrix accepted")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
