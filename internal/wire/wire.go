// Package wire provides the little-endian binary primitives shared by the
// model serialization codecs (internal/tree, forest, xgb, svm, nn,
// preprocess) and the artifact container (internal/artifact).
//
// Writer and Reader are error-sticky: after the first failure every further
// call is a no-op, so codecs can encode a whole structure and check the
// error once at the end. The Reader is written for hostile input — every
// length prefix is bounds-checked before allocation, so a truncated or
// corrupted stream produces a descriptive error, never a panic or a
// multi-gigabyte allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/mat"
)

// maxElems caps the element count of any length-prefixed slice (floats,
// ints, bytes of a string). 1<<27 float64s is a gigabyte — far beyond any
// real model section — so larger prefixes are treated as corruption.
const maxElems = 1 << 27

// Writer serialises primitives to an io.Writer, remembering the first error.
type Writer struct {
	w   io.Writer
	buf [8]byte
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, or nil.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// U16 writes a uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.write(w.buf[:2])
}

// U32 writes a uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 writes a float64 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String writes a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.write([]byte(s))
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.U64(uint64(len(p)))
	w.write(p)
}

// F64s writes a length-prefixed float64 slice.
func (w *Writer) F64s(vs []float64) {
	w.U64(uint64(len(vs)))
	if w.err != nil || len(vs) == 0 {
		return
	}
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	w.write(buf)
}

// Ints writes a length-prefixed int slice (as int64s).
func (w *Writer) Ints(vs []int) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.I64(int64(v))
	}
}

// Matrix writes a dense matrix (rows, cols, row-major data). m must be
// non-nil; codecs reject unfitted models before getting here.
func (w *Writer) Matrix(m *mat.Matrix) {
	if w.err == nil && m == nil {
		w.err = errors.New("wire: nil matrix")
		return
	}
	w.Int(m.Rows)
	w.Int(m.Cols)
	w.F64s(m.Data)
}

// Reader deserialises primitives from an io.Reader, remembering the first
// error. Short reads surface as io.ErrUnexpectedEOF wrapped with context.
type Reader struct {
	r   io.Reader
	buf [8]byte
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the first read error, or nil.
func (r *Reader) Err() error { return r.err }

// Fail records err (if the reader has not already failed) so codecs can
// surface validation errors through the same sticky-error channel.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("wire: truncated input: %w", err)
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.read(r.buf[:1]) {
		return 0
	}
	return r.buf[0]
}

// U16 reads a uint16.
func (r *Reader) U16() uint16 {
	if !r.read(r.buf[:2]) {
		return 0
	}
	return binary.LittleEndian.Uint16(r.buf[:2])
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	if !r.read(r.buf[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	if !r.read(r.buf[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 into an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads one byte as a bool; any value other than 0 or 1 is corruption.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(errors.New("wire: corrupt bool"))
		return false
	}
}

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// sliceLen validates a length prefix before anything is allocated.
func (r *Reader) sliceLen(what string) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > maxElems {
		r.Fail(fmt.Errorf("wire: %s length %d exceeds sanity limit", what, n))
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen("string")
	if r.err != nil || n == 0 {
		return ""
	}
	buf := make([]byte, n)
	if !r.read(buf) {
		return ""
	}
	return string(buf)
}

// Bytes reads a length-prefixed byte slice. The same sanity cap as every
// other length prefix applies, so a hostile prefix cannot provoke a
// multi-gigabyte allocation.
func (r *Reader) Bytes() []byte {
	n := r.sliceLen("byte slice")
	if r.err != nil || n == 0 {
		return nil
	}
	buf := make([]byte, n)
	if !r.read(buf) {
		return nil
	}
	return buf
}

// F64s reads a length-prefixed float64 slice.
func (r *Reader) F64s() []float64 {
	n := r.sliceLen("float slice")
	if r.err != nil || n == 0 {
		return nil
	}
	buf := make([]byte, 8*n)
	if !r.read(buf) {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// Ints reads a length-prefixed int slice.
func (r *Reader) Ints() []int {
	n := r.sliceLen("int slice")
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Matrix reads a dense matrix, validating that the data length matches the
// declared shape.
func (r *Reader) Matrix() *mat.Matrix {
	rows := r.Int()
	cols := r.Int()
	data := r.F64s()
	if r.err != nil {
		return nil
	}
	// Cap the dimensions before multiplying: 2^32×2^32 would overflow the
	// product to 0 and slip past the length check below.
	if rows < 0 || cols < 0 || rows > maxElems || cols > maxElems {
		r.Fail(fmt.Errorf("wire: corrupt matrix shape %dx%d", rows, cols))
		return nil
	}
	if len(data) != rows*cols {
		r.Fail(fmt.Errorf("wire: corrupt matrix: %d values for shape %dx%d", len(data), rows, cols))
		return nil
	}
	m, err := mat.FromSlice(rows, cols, data)
	if err != nil {
		r.Fail(err)
		return nil
	}
	return m
}
