// NPZ interop: generate a challenge dataset, write it in the exact .npz
// layout the MIT challenge distributes, read it back, and verify the round
// trip — the same files load in Python with numpy.load.
//
//	go run ./examples/npzexport
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/dataset"
	"repro/internal/npz"
)

func main() {
	dir, err := os.MkdirTemp("", "wcc-npz")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("generating 60-random-1 (scale 0.05)...")
	ds, err := repro.GenerateDataset("60-random-1", 0.05, 1)
	if err != nil {
		log.Fatal(err)
	}
	ch := ds.Challenge

	ar, err := ch.ToArchive()
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "60-random-1.npz")
	if err := ar.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("wrote %s (%.1f MB)\n", path, float64(fi.Size())/1e6)

	back, err := npz.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\narchive members:")
	for _, name := range back.Names() {
		a, _ := back.Get(name)
		fmt.Printf("  %-12s shape=%v dtype=%s\n", name, a.Shape, a.DType)
	}

	got, err := dataset.FromArchive(back, ch.Spec)
	if err != nil {
		log.Fatal(err)
	}
	same := got.Train.Len() == ch.Train.Len() && got.Test.Len() == ch.Test.Len()
	for i := range ch.Train.X.Data {
		if got.Train.X.Data[i] != ch.Train.X.Data[i] {
			same = false
			break
		}
	}
	fmt.Printf("\nround trip bit-exact: %v\n", same)
	fmt.Println("\nthe same file loads in Python:")
	fmt.Println("  >>> d = numpy.load('60-random-1.npz')")
	fmt.Println("  >>> d['X_train'].shape, d['y_train'].shape, d['model_train'][:3]")
}
