// Quickstart: generate a small challenge dataset, train the paper's best
// baseline (random forest on covariance features), and print the accuracy
// with the most-confused class pairs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 10% of the paper's 3,430 jobs keeps this under a minute.
	fmt.Println("generating the 60-middle-1 challenge dataset (scale 0.1)...")
	ds, err := repro.GenerateDataset("60-middle-1", 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d train / %d test GPU windows, 540 samples x 7 DCGM sensors\n",
		ds.Challenge.Train.Len(), ds.Challenge.Test.Len())

	fmt.Println("training RF (100 trees) on the 28 covariance features...")
	res, err := repro.TrainRFCov(ds, 100, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  test accuracy: %.2f%%  (paper's full-scale RF-Cov: 93.02%%)\n\n", res.Accuracy*100)

	fmt.Println("most-confused class pairs:")
	for _, cell := range res.Confusion.MostConfused(5) {
		fmt.Printf("  %-14s mistaken for %-14s %d times\n",
			res.ClassNames[cell[0]], res.ClassNames[cell[1]], cell[2])
	}
	fmt.Println("\n(sub-architectures of the same family dominate the confusion,")
	fmt.Println(" exactly the failure mode the challenge is about)")
}
