// Live monitor: the deployment scenario the paper's future-work section
// sketches — classify *running* jobs from a sliding 60-second window of
// their live telemetry.
//
// A classifier is trained offline on the 60-middle-1 dataset, then a
// handful of "live" jobs stream DCGM samples; every 15 seconds of stream
// the monitor re-extracts the covariance features from the most recent 540
// samples and prints its current belief about what is running.
//
//	go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/telemetry"
)

func main() {
	fmt.Println("offline phase: training RF-Cov on 60-middle-1 (scale 0.08)...")
	ds, err := repro.GenerateDataset("60-middle-1", 0.08, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.TrainRFCov(ds, 100, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  offline test accuracy: %.2f%%\n\n", res.Accuracy*100)

	// The scaler the training pipeline fitted is re-derived here the same
	// way so the live features live in the same space.
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(ds.Challenge.Train.X.Flatten()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("live phase: monitoring 4 running jobs...")
	sim := ds.Sim
	jobs := pickLiveJobs(sim, 4)
	for _, j := range jobs {
		fmt.Printf("\njob %d (%d GPUs, truth: %s)\n", j.ID, j.NumGPUs, j.Class.Name())
		// Stream: window endpoints advancing 15 s at a time, starting once
		// a full minute of telemetry exists.
		for end := 60.0; end <= 120 && end <= j.Duration; end += 15 {
			w, err := j.GPUWindow(0, end-60, 540)
			if err != nil {
				log.Fatal(err)
			}
			probs, err := classifyWindow(res.Model, &scaler, w)
			if err != nil {
				log.Fatal(err)
			}
			best := mat.ArgMax(probs)
			fmt.Printf("  t=%4.0fs  prediction: %-14s (p=%.2f)", end, res.ClassNames[best], probs[best])
			if telemetry.Class(best) == j.Class {
				fmt.Println("  << correct")
			} else {
				fmt.Println()
			}
		}
	}
}

// pickLiveJobs selects jobs long enough to stream for two minutes, spread
// over distinct families.
func pickLiveJobs(sim *telemetry.Simulator, n int) []*telemetry.Job {
	var out []*telemetry.Job
	seen := map[telemetry.Family]bool{}
	for _, j := range sim.Jobs() {
		if j.Duration < 130 || seen[j.Class.Family()] {
			continue
		}
		seen[j.Class.Family()] = true
		out = append(out, j)
		if len(out) == n {
			break
		}
	}
	return out
}

// classifyWindow standardises one live window with the offline scaler,
// embeds it as covariance features and asks the forest for probabilities.
func classifyWindow(model *forest.Classifier, scaler *preprocess.StandardScaler, w *mat.Matrix) ([]float64, error) {
	flat := mat.New(1, w.Rows*w.Cols)
	copy(flat.Data, w.Data)
	z, err := scaler.Transform(flat)
	if err != nil {
		return nil, err
	}
	feats, err := preprocess.CovarianceEmbed(z, w.Rows, w.Cols)
	if err != nil {
		return nil, err
	}
	probs, err := model.PredictProba(feats)
	if err != nil {
		return nil, err
	}
	return probs.Row(0), nil
}
