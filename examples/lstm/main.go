// LSTM baseline: train the paper's Section V bidirectional LSTM on a small
// challenge dataset — standardisation only, Adam with a cyclical
// cosine-annealing learning rate, early stopping on validation accuracy —
// and report test accuracy.
//
// The hidden size and sequence stride are scaled down so the pure-Go
// implementation finishes in a couple of minutes on one core; pass the
// paper's h=128 / stride=1 if you have the budget.
//
//	go run ./examples/lstm
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/preprocess"
	"repro/internal/telemetry"
)

// tensorFromFlat reshapes a flattened n×(T·C) matrix back to sequences.
func tensorFromFlat(z *mat.Matrix, t, c int) *dataset.Tensor3 {
	out := dataset.NewTensor3(z.Rows, t, c)
	for i, v := range z.Data {
		out.Data[i] = float32(v)
	}
	return out
}

func main() {
	fmt.Println("generating 60-middle-1 (scale 0.08)...")
	ds, err := repro.GenerateDataset("60-middle-1", 0.08, 1)
	if err != nil {
		log.Fatal(err)
	}
	ch := ds.Challenge

	// The paper standardises and applies no other preprocessing: flatten,
	// fit the scaler on the training split, transform both, reshape back to
	// sequences, and downsample 10× for the scaled run.
	var scaler preprocess.StandardScaler
	trainZ, err := scaler.FitTransform(ch.Train.X.Flatten())
	if err != nil {
		log.Fatal(err)
	}
	testZ, err := scaler.Transform(ch.Test.X.Flatten())
	if err != nil {
		log.Fatal(err)
	}
	trainT := tensorFromFlat(trainZ, ch.Train.X.T, ch.Train.X.C).Downsample(10)
	testT := tensorFromFlat(testZ, ch.Test.X.T, ch.Test.X.C).Downsample(10)

	fmt.Printf("  %d train / %d test sequences of %d steps x %d sensors\n",
		ch.Train.Len(), ch.Test.Len(), trainT.T, trainT.C)

	model, err := nn.NewBiLSTMClassifier(trainT.C, 32, trainT.T, int(telemetry.NumClasses), 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := nn.TrainConfig{
		Epochs:      12,
		BatchSize:   32,
		LRMax:       3e-3,
		LRMin:       1e-4,
		CycleEpochs: 6,
		Patience:    8,
		ValFrac:     0.15,
		MaxGradNorm: 5,
		Seed:        1,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	}
	fmt.Println("training bi-LSTM (h=32, cyclical cosine LR, early stopping)...")
	res, err := nn.Train(model, trainT, ch.Train.Y, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best validation accuracy %.4f at epoch %d (early stopped: %v)\n",
		res.BestValAcc, res.BestEpoch, res.EarlyStopped)

	pred, err := nn.Predict(model, testT, nil, cfg.BatchSize)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := metrics.Accuracy(ch.Test.Y, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy: %.2f%%  (paper's LSTM h=128 on 60-middle-1: 92.09%%)\n", acc*100)
}
