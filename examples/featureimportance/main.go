// Feature importance: reproduce the paper's §IV-B analysis — train XGBoost
// on the covariance features of 60-random-1 and rank the sensor
// variances/covariances by gain importance. The paper found the GPU/CPU
// utilization covariance, GPU-utilization variance and power-draw variance
// most predictive; with GPU-only tensors the analogous top entries involve
// utilization, memory activity and power.
//
//	go run ./examples/featureimportance
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/xgb"
)

func main() {
	fmt.Println("generating 60-random-1 (scale 0.1)...")
	ds, err := repro.GenerateDataset("60-random-1", 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fp, err := core.CovFeatures(ds.Challenge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d train trials -> 28 covariance features\n", fp.TrainX.Rows)

	fmt.Println("training XGBoost (40 rounds, depth 6, eta 0.3)...")
	m := xgb.New(xgb.Config{
		NumRounds: 40, LearningRate: 0.3, MaxDepth: 6,
		Lambda: 1, MinChildWeight: 1, Subsample: 1, Seed: 1,
	})
	if err := m.Fit(fp.TrainX, fp.TrainY, int(telemetry.NumClasses), fp.TestX, fp.TestY); err != nil {
		log.Fatal(err)
	}

	final := m.EvalAccuracy[len(m.EvalAccuracy)-1]
	fmt.Printf("  test accuracy: %.2f%%  (paper: 88.47%%)\n", final*100)
	fmt.Printf("  train loss after 40 rounds: %.4f (near zero = overfitting, as the paper notes)\n\n",
		m.TrainLoss[len(m.TrainLoss)-1])

	// Accuracy plateau analysis (the paper: performance plateaus ~40 rounds).
	fmt.Println("test accuracy by boosting round:")
	for r := 4; r < len(m.EvalAccuracy); r += 5 {
		bar := strings.Repeat("#", int(m.EvalAccuracy[r]*50))
		fmt.Printf("  round %2d  %.3f %s\n", r+1, m.EvalAccuracy[r], bar)
	}

	fmt.Println("\nfeature importance (gain), top 10 of 28:")
	names := core.CovFeatureNames()
	imp := m.FeatureImportances(xgb.ImportanceGain)
	for rank, f := range m.TopFeatures(xgb.ImportanceGain, 10) {
		fmt.Printf("  %2d. %-58s %.3f\n", rank+1, names[f], imp[f])
	}
}
