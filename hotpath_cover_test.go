package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/directive"
)

// TestHotpathAnnotationsHaveAllocGates closes the loop on the //wcc:hotpath
// contract: the static analyzer (internal/analysis/hotpath) proves the
// absence of categorically-allocating constructs, and this test proves the
// presence of the runtime gate — every annotated function must be exercised
// by a testing.AllocsPerRun gate in a *_alloc_test.go in its own package.
// Annotating a function without pinning it, or deleting a gate while
// keeping the annotation, fails tier-1 here.
func TestHotpathAnnotationsHaveAllocGates(t *testing.T) {
	type annot struct{ dir, fn string }
	var annots []annot
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "vendor", "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && directive.HasFunc(fn, "hotpath") {
				annots = append(annots, annot{dir: filepath.Dir(path), fn: fn.Name.Name})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The serving plane carries at least its seven known kernels; fewer
	// means someone un-annotated a hot path without retiring its gate
	// story here and in DESIGN.md §13.
	if len(annots) < 6 {
		t.Fatalf("found only %d //wcc:hotpath annotations, want >= 6", len(annots))
	}

	gates := map[string]string{} // dir -> concatenated *_alloc_test.go content
	for _, a := range annots {
		if _, ok := gates[a.dir]; !ok {
			var sb strings.Builder
			matches, err := filepath.Glob(filepath.Join(a.dir, "*_alloc_test.go"))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range matches {
				b, err := os.ReadFile(m)
				if err != nil {
					t.Fatal(err)
				}
				sb.Write(b)
			}
			gates[a.dir] = sb.String()
		}
		content := gates[a.dir]
		if content == "" {
			t.Errorf("%s: //wcc:hotpath on %s but no *_alloc_test.go in the package", a.dir, a.fn)
			continue
		}
		if !strings.Contains(content, a.fn+"(") {
			t.Errorf("%s: //wcc:hotpath on %s but no alloc gate calls it", a.dir, a.fn)
		}
		if !strings.Contains(content, "AllocsPerRun") {
			t.Errorf("%s: alloc test files never call testing.AllocsPerRun", a.dir)
		}
	}
}
