// Benchmarks regenerating each paper table (I-IX) plus the ablations
// DESIGN.md calls out. Accuracy-bearing benches attach the measured accuracy
// as a custom "acc%" metric so `go test -bench` output doubles as a compact
// experiment report.
//
// Benchmarks run at reduced scale (they measure the machinery, not the
// paper's absolute numbers); `wccbench -preset scaled` is the full
// experiment driver.
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/preprocess"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/svm"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/internal/xgb"
)

// Shared fixtures, built once.
var (
	fixOnce sync.Once
	fixSim  *telemetry.Simulator
	fixMid  *dataset.Challenge // 60-middle-1, capped
	fixCov  *core.FeaturePair
	fixPCA  *core.FeaturePair
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		p := core.PresetSmoke()
		p.MaxTrain = 260
		p.MaxTest = 130
		var err error
		fixSim, err = core.NewSimulator(p)
		if err != nil {
			panic(err)
		}
		spec, _ := dataset.SpecByName("60-middle-1")
		fixMid, err = core.BuildDataset(fixSim, spec, p)
		if err != nil {
			panic(err)
		}
		fixCov, err = core.CovFeatures(fixMid)
		if err != nil {
			panic(err)
		}
		fixPCA, err = core.PCAFeatures(fixMid, 28, 1)
		if err != nil {
			panic(err)
		}
	})
}

// BenchmarkTableI_Generate measures labelled-dataset generation (Table I's
// underlying population) at 5% scale.
func BenchmarkTableI_Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim, err := telemetry.NewSimulator(telemetry.Config{Seed: int64(i + 1), Scale: 0.05, GapRate: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(core.RunTable1(sim)) != int(telemetry.NumFamilies) {
			b.Fatal("bad table 1")
		}
	}
}

// BenchmarkTableII_III_Schema measures the sensor-schema rendering.
func BenchmarkTableII_III_Schema(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.FormatTables2And3()) == 0 {
			b.Fatal("empty schema")
		}
	}
}

// BenchmarkTableIV_BuildDataset measures end-to-end construction of one
// challenge dataset: window extraction, gap filtering, stratified split.
func BenchmarkTableIV_BuildDataset(b *testing.B) {
	fixtures(b)
	spec, _ := dataset.SpecByName("60-random-1")
	opts := dataset.DefaultBuildOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := dataset.Build(fixSim, spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		if ch.Train.Len() == 0 {
			b.Fatal("empty build")
		}
	}
}

// table5Bench runs one fit+score cycle for a Table V cell.
func table5Bench(b *testing.B, fp *core.FeaturePair, fit func() ([]int, error)) {
	b.Helper()
	var lastAcc float64
	for i := 0; i < b.N; i++ {
		pred, err := fit()
		if err != nil {
			b.Fatal(err)
		}
		lastAcc, err = metrics.Accuracy(fp.TestY, pred)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastAcc*100, "acc%")
}

// BenchmarkTableV_RFCov measures the paper's best baseline.
func BenchmarkTableV_RFCov(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	table5Bench(b, fixCov, func() ([]int, error) {
		f := forest.New(forest.Config{NumTrees: 50, Bootstrap: true, Seed: 1})
		if err := f.Fit(fixCov.TrainX, fixCov.TrainY, int(telemetry.NumClasses)); err != nil {
			return nil, err
		}
		return f.Predict(fixCov.TestX)
	})
}

// BenchmarkTableV_RFPCA measures RF on PCA features.
func BenchmarkTableV_RFPCA(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	table5Bench(b, fixPCA, func() ([]int, error) {
		f := forest.New(forest.Config{NumTrees: 50, Bootstrap: true, Seed: 1})
		if err := f.Fit(fixPCA.TrainX, fixPCA.TrainY, int(telemetry.NumClasses)); err != nil {
			return nil, err
		}
		return f.Predict(fixPCA.TestX)
	})
}

// BenchmarkTableV_SVMCov measures the RBF SVC on covariance features.
func BenchmarkTableV_SVMCov(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	table5Bench(b, fixCov, func() ([]int, error) {
		m := svm.New(svm.Config{C: 10, Seed: 1})
		if err := m.Fit(fixCov.TrainX, fixCov.TrainY); err != nil {
			return nil, err
		}
		return m.Predict(fixCov.TestX)
	})
}

// BenchmarkTableV_SVMPCA measures the RBF SVC on PCA features.
func BenchmarkTableV_SVMPCA(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	table5Bench(b, fixPCA, func() ([]int, error) {
		m := svm.New(svm.Config{C: 10, Seed: 1})
		if err := m.Fit(fixPCA.TrainX, fixPCA.TrainY); err != nil {
			return nil, err
		}
		return m.Predict(fixPCA.TestX)
	})
}

// BenchmarkXGBoost_Random1 measures the §IV-B configuration (40 rounds,
// depth 6) on covariance features.
func BenchmarkXGBoost_Random1(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	table5Bench(b, fixCov, func() ([]int, error) {
		m := xgb.New(xgb.Config{
			NumRounds: 40, LearningRate: 0.3, MaxDepth: 6,
			Lambda: 1, MinChildWeight: 1, Subsample: 1, Seed: 1,
		})
		if err := m.Fit(fixCov.TrainX, fixCov.TrainY, int(telemetry.NumClasses), nil, nil); err != nil {
			return nil, err
		}
		return m.Predict(fixCov.TestX)
	})
}

// rnnFixture prepares a small standardised, downsampled sequence set.
func rnnFixture(b *testing.B, stride int) (*dataset.Tensor3, []int) {
	b.Helper()
	fixtures(b)
	var scaler preprocess.StandardScaler
	z, err := scaler.FitTransform(fixMid.Train.X.Flatten())
	if err != nil {
		b.Fatal(err)
	}
	t3 := dataset.NewTensor3(z.Rows, fixMid.Train.X.T, fixMid.Train.X.C)
	for i, v := range z.Data {
		t3.Data[i] = float32(v)
	}
	return t3.Downsample(stride), fixMid.Train.Y
}

// BenchmarkTableVI_LSTM measures one bi-LSTM training epoch.
func BenchmarkTableVI_LSTM(b *testing.B) {
	x, y := rnnFixture(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := nn.NewBiLSTMClassifier(x.C, 8, x.T, int(telemetry.NumClasses), 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		cfg := nn.DefaultTrainConfig()
		cfg.Epochs = 1
		cfg.Patience = 0
		if _, err := nn.Train(model, x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVI_CNNLSTM measures one CNN-LSTM training epoch (the
// paper's ~8× faster variant).
func BenchmarkTableVI_CNNLSTM(b *testing.B) {
	x, y := rnnFixture(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := nn.NewCNNLSTMClassifier(x.C, x.T, int(telemetry.NumClasses), nn.CNNLSTMOptions{Hidden: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cfg := nn.DefaultTrainConfig()
		cfg.Epochs = 1
		cfg.Patience = 0
		if _, err := nn.Train(model, x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTables789_Inventory measures the class-inventory tally.
func BenchmarkTables789_Inventory(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(core.RunTables789(fixSim)) != int(telemetry.NumClasses) {
			b.Fatal("bad inventory")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationEmbeddingCov measures the covariance embedding alone.
func BenchmarkAblationEmbeddingCov(b *testing.B) {
	fixtures(b)
	var scaler preprocess.StandardScaler
	z, err := scaler.FitTransform(fixMid.Train.X.Flatten())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := preprocess.CovarianceEmbed(z, fixMid.Train.X.T, fixMid.Train.X.C); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEmbeddingPCA measures PCA fit+project at dim 28.
func BenchmarkAblationEmbeddingPCA(b *testing.B) {
	fixtures(b)
	var scaler preprocess.StandardScaler
	z, err := scaler.FitTransform(fixMid.Train.X.Flatten())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pca, err := preprocess.FitPCA(z, 28, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pca.Transform(z); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEigensolverJacobi measures exact Jacobi on a 378-dim
// covariance (downsampled flatten).
func BenchmarkAblationEigensolverJacobi(b *testing.B) {
	fixtures(b)
	ds := fixMid.Train.X.Downsample(10)
	var scaler preprocess.StandardScaler
	z, err := scaler.FitTransform(ds.Flatten())
	if err != nil {
		b.Fatal(err)
	}
	cov, err := mat.Covariance(z, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mat.EigSym(cov); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEigensolverRandomized measures the randomized top-k
// solver on the same data.
func BenchmarkAblationEigensolverRandomized(b *testing.B) {
	fixtures(b)
	ds := fixMid.Train.X.Downsample(10)
	var scaler preprocess.StandardScaler
	z, err := scaler.FitTransform(ds.Flatten())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mat.EigSymTopK(z, 8, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStartPhase reports RF-Cov accuracy on the start dataset
// with the generic startup phase enabled vs disabled (the §IV-A mechanism);
// the "acc%" delta between sub-benchmarks is the measured effect.
func BenchmarkAblationStartPhase(b *testing.B) {
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"startup", false}, {"nostartup", true}} {
		b.Run(variant.name, func(b *testing.B) {
			sim, err := telemetry.NewSimulator(telemetry.Config{
				Seed: 1, Scale: 0.05, GapRate: 1, DisableStartup: variant.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			p := core.PresetSmoke()
			p.MaxTrain = 260
			p.MaxTest = 130
			spec, _ := dataset.SpecByName("60-start-1")
			ch, err := core.BuildDataset(sim, spec, p)
			if err != nil {
				b.Fatal(err)
			}
			fp, err := core.CovFeatures(ch)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			table5Bench(b, fp, func() ([]int, error) {
				f := forest.New(forest.Config{NumTrees: 50, Bootstrap: true, Seed: 1})
				if err := f.Fit(fp.TrainX, fp.TrainY, int(telemetry.NumClasses)); err != nil {
					return nil, err
				}
				return f.Predict(fp.TestX)
			})
		})
	}
}

// BenchmarkExtensionFusedFeatures measures the CPU+GPU fused covariance
// pipeline (join, rate-differencing, upsample, embed).
func BenchmarkExtensionFusedFeatures(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp, err := core.FusedCovFeatures(fixSim, fixMid)
		if err != nil {
			b.Fatal(err)
		}
		if fp.TrainX.Cols != 120 {
			b.Fatal("bad fused dims")
		}
	}
}

// BenchmarkExtensionConvLSTM measures one training epoch of the paper's
// future-work ConvLSTM architecture.
func BenchmarkExtensionConvLSTM(b *testing.B) {
	x, y := rnnFixture(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := nn.NewConvLSTMClassifier(x.C, 4, x.T, int(telemetry.NumClasses), 1)
		if err != nil {
			b.Fatal(err)
		}
		cfg := nn.DefaultTrainConfig()
		cfg.Epochs = 1
		cfg.Patience = 0
		if _, err := nn.Train(model, x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionStreamPush measures the incremental sliding-window
// embedder against re-embedding from scratch (the live-monitor hot path).
func BenchmarkExtensionStreamPush(b *testing.B) {
	fixtures(b)
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(fixMid.Train.X.Flatten()); err != nil {
		b.Fatal(err)
	}
	emb, err := stream.NewWindowedEmbedder(fixMid.Train.X.T, fixMid.Train.X.C, &scaler)
	if err != nil {
		b.Fatal(err)
	}
	sample := []float64{85, 60, 24000, 8500, 65, 55, 240}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := emb.Push(sample); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDownsample measures one LSTM epoch at three sequence
// strides (the RNN preset's compute/length trade-off).
func BenchmarkAblationDownsample(b *testing.B) {
	for _, stride := range []int{30, 20, 10} {
		b.Run(map[int]string{30: "stride30", 20: "stride20", 10: "stride10"}[stride], func(b *testing.B) {
			x, y := rnnFixture(b, stride)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model, err := nn.NewBiLSTMClassifier(x.C, 8, x.T, int(telemetry.NumClasses), 1, 1)
				if err != nil {
					b.Fatal(err)
				}
				cfg := nn.DefaultTrainConfig()
				cfg.Epochs = 1
				cfg.Patience = 0
				if _, err := nn.Train(model, x, y, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Serving-path benches (DESIGN.md §6) ---

// servingMatrix cycles the covariance test rows into a fixed-height batch,
// the shape one fleet tick hands the model.
func servingMatrix(b *testing.B, rows int) *mat.Matrix {
	b.Helper()
	fixtures(b)
	out := mat.New(rows, fixCov.TestX.Cols)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), fixCov.TestX.Row(i%fixCov.TestX.Rows))
	}
	return out
}

// BenchmarkServingForest compares 256 single-row PredictProba calls (the
// pre-fleet serving pattern: one call per monitored job) against one
// batched call on the same 256-row matrix. The "rows/s" metric is the
// serving throughput either path sustains.
func BenchmarkServingForest(b *testing.B) {
	batch := servingMatrix(b, 256)
	f := forest.New(forest.Config{NumTrees: 50, Bootstrap: true, Seed: 1})
	if err := f.Fit(fixCov.TrainX, fixCov.TrainY, int(telemetry.NumClasses)); err != nil {
		b.Fatal(err)
	}
	b.Run("single256", func(b *testing.B) {
		row := mat.New(1, batch.Cols)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < batch.Rows; r++ {
				copy(row.Data, batch.Row(r))
				if _, err := f.PredictProba(row); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(batch.Rows*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("batched256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.PredictProbaBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch.Rows*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkServingXGB is the same single-vs-batched comparison for the
// boosted ensemble.
func BenchmarkServingXGB(b *testing.B) {
	batch := servingMatrix(b, 256)
	m := xgb.New(xgb.Config{NumRounds: 40, LearningRate: 0.3, MaxDepth: 6,
		Lambda: 1, MinChildWeight: 1, Subsample: 1, Seed: 1})
	if err := m.Fit(fixCov.TrainX, fixCov.TrainY, int(telemetry.NumClasses), nil, nil); err != nil {
		b.Fatal(err)
	}
	b.Run("single256", func(b *testing.B) {
		row := mat.New(1, batch.Cols)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < batch.Rows; r++ {
				copy(row.Data, batch.Row(r))
				if _, err := m.PredictProba(row); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(batch.Rows*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("batched256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.PredictProbaBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch.Rows*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkFleetThroughput measures the full serving loop at several fleet
// sizes: telemetry for every job is ingested sample by sample and a batched
// inference tick fires every six seconds of simulated time. Custom metrics
// report sustained ingest ("samples/s") and classification ("cls/s")
// throughput — the serving-path baseline for future PRs.
func BenchmarkFleetThroughput(b *testing.B) {
	const tickEvery = 54 // samples between ticks: six seconds at 9 Hz
	scaler, model, window, sensors, series := servingSeries(b, tickEvery)
	nSamples := window + tickEvery

	for _, jobs := range []int{16, 64, 256} {
		b.Run(map[int]string{16: "jobs16", 64: "jobs64", 256: "jobs256"}[jobs], func(b *testing.B) {
			b.ReportAllocs()
			var ingested, classed uint64
			for i := 0; i < b.N; i++ {
				m, err := fleet.New(fleet.Config{
					Window: window, Sensors: sensors, Scaler: scaler, Model: model,
				})
				if err != nil {
					b.Fatal(err)
				}
				for t := 0; t < nSamples; t++ {
					for k := 0; k < jobs; k++ {
						if err := m.Ingest(k, series[k%len(series)][t]); err != nil {
							b.Fatal(err)
						}
					}
					if t%tickEvery == tickEvery-1 {
						if _, err := m.Tick(); err != nil {
							b.Fatal(err)
						}
					}
				}
				ingested += m.SamplesIngested()
				classed += m.Classifications()
			}
			sec := b.Elapsed().Seconds()
			b.ReportMetric(float64(ingested)/sec, "samples/s")
			b.ReportMetric(float64(classed)/sec, "cls/s")
		})
	}
}

// servingSeries builds the shared fixture of the fleet-serving
// benchmarks: a scaler fitted on the challenge windows, the RF-Cov
// serving model, and one replayable sample series per sufficiently long
// simulated job (window + tickEvery samples each).
func servingSeries(b *testing.B, tickEvery int) (*preprocess.StandardScaler, *forest.Classifier, int, int, [][][]float64) {
	b.Helper()
	fixtures(b)
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(fixMid.Train.X.Flatten()); err != nil {
		b.Fatal(err)
	}
	model := forest.New(forest.Config{NumTrees: 50, Bootstrap: true, Seed: 1})
	if err := model.Fit(fixCov.TrainX, fixCov.TrainY, int(telemetry.NumClasses)); err != nil {
		b.Fatal(err)
	}
	window, sensors := fixMid.Train.X.T, fixMid.Train.X.C
	nSamples := window + tickEvery
	minDur := float64(nSamples)*telemetry.GPUSampleDT + 1
	var sources []*telemetry.Job
	for _, j := range fixSim.Jobs() {
		if j.Duration >= minDur {
			sources = append(sources, j)
		}
	}
	if len(sources) == 0 {
		b.Fatal("no streamable jobs")
	}
	series := make([][][]float64, len(sources))
	for si, j := range sources {
		w, err := j.GPUWindow(0, 0, nSamples)
		if err != nil {
			b.Fatal(err)
		}
		rows := make([][]float64, nSamples)
		for t := 0; t < nSamples; t++ {
			rows[t] = w.Row(t)
		}
		series[si] = rows
	}
	return &scaler, model, window, sensors, series
}

// BenchmarkShardedIngest measures the sharded serving core (internal/shard)
// at 1/2/4/8 shards: 256 jobs ingested from GOMAXPROCS concurrent
// goroutines while every shard runs its own 1ms tick loop — the serving
// configuration wccserve -listen runs. Against BenchmarkFleetThroughput's
// single monitor the sharded core parallelises both ingest (disjoint
// registries) and inference (independent tick loops); the "samples/s"
// metric is the acceptance number — on multi-core hardware 4+ shards
// should beat the single-monitor benchmark by ≥2×. On a single core the
// curve is flat: sharding buys parallelism, not cycles.
func BenchmarkShardedIngest(b *testing.B) {
	const tickEvery = 54
	scaler, model, window, sensors, series := servingSeries(b, tickEvery)
	nSamples := window + tickEvery
	const jobs = 256
	workers := runtime.GOMAXPROCS(0)
	if workers > jobs {
		workers = jobs
	}

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var ingested, classed uint64
			for i := 0; i < b.N; i++ {
				core, err := shard.New(shard.Config{
					Window: window, Sensors: sensors, Scaler: scaler, Model: model, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				tickErrCh := make(chan error, 1)
				stop := make(chan struct{})
				ticksDone := make(chan struct{})
				go func() {
					defer close(ticksDone)
					core.Run(stop, time.Millisecond, func(st shard.ShardTick) {
						if st.Err != nil {
							select {
							case tickErrCh <- st.Err:
							default:
							}
						}
					})
				}()
				var wg sync.WaitGroup
				ingestErr := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for t := 0; t < nSamples; t++ {
							for k := w; k < jobs; k += workers {
								if err := core.Ingest(k, series[k%len(series)][t]); err != nil {
									select {
									case ingestErr <- err:
									default:
									}
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
				close(stop)
				<-ticksDone
				select {
				case err := <-ingestErr:
					b.Fatal(err)
				default:
				}
				select {
				case err := <-tickErrCh:
					b.Fatal(err)
				default:
				}
				if _, err := core.Tick(); err != nil {
					b.Fatal(err)
				}
				ingested += core.SamplesIngested()
				classed += core.Classifications()
			}
			sec := b.Elapsed().Seconds()
			b.ReportMetric(float64(ingested)/sec, "samples/s")
			b.ReportMetric(float64(classed)/sec, "cls/s")
		})
	}
}

// serverIngestBench measures the HTTP serving layer end to end: batched
// ingest over a real loopback connection into the bounded queue,
// worker-pool ingest, and per-request accounting — the acceptance path
// cmd/wccload drives at scale. The payload is one 256-sample batch spread
// over 32 jobs, replayed repeatedly, encoded in the requested framing.
func serverIngestBench(b *testing.B, contentType string) {
	fixtures(b)
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(fixMid.Train.X.Flatten()); err != nil {
		b.Fatal(err)
	}
	model := forest.New(forest.Config{NumTrees: 20, Bootstrap: true, Seed: 1})
	if err := model.Fit(fixCov.TrainX, fixCov.TrainY, int(telemetry.NumClasses)); err != nil {
		b.Fatal(err)
	}
	window, sensors := fixMid.Train.X.T, fixMid.Train.X.C
	m, err := fleet.New(fleet.Config{Window: window, Sensors: sensors, Scaler: &scaler, Model: model})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{Monitor: m, TickEvery: 10 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const lines, jobs = 256, 32
	src := fixSim.Jobs()[0]
	w, err := src.GPUWindow(0, 0, lines)
	if err != nil {
		b.Fatal(err)
	}
	var payload []byte
	if contentType == wire.IngestContentType {
		for t := 0; t < lines; t++ {
			payload = wire.AppendIngestRecord(payload, int64(t%jobs), w.Row(t))
		}
	} else {
		var body bytes.Buffer
		for t := 0; t < lines; t++ {
			line, err := json.Marshal(struct {
				Job    int       `json:"job"`
				Values []float64 `json:"values"`
			}{t % jobs, w.Row(t)})
			if err != nil {
				b.Fatal(err)
			}
			body.Write(line)
			body.WriteByte('\n')
		}
		payload = body.Bytes()
	}
	client := &http.Client{}

	b.ReportAllocs()
	b.ResetTimer()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/ingest", contentType, bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.ReportMetric(float64(lines)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkServerIngestHTTP is the NDJSON framing over the serving layer.
func BenchmarkServerIngestHTTP(b *testing.B) {
	serverIngestBench(b, "application/x-ndjson")
}

// BenchmarkServerIngestHTTPBinary is the same path under the
// length-prefixed binary framing (internal/wire).
func BenchmarkServerIngestHTTPBinary(b *testing.B) {
	serverIngestBench(b, wire.IngestContentType)
}
