// Command wccload drives the wccserve -listen HTTP API with simulated
// telemetry over real loopback (or network) connections — the load
// generator for the serving layer. It asks the server for its window shape
// (/healthz), replays the same simulated jobs wccserve's demo mode would,
// fans them out to the requested fleet size, and streams batched ingest
// requests — NDJSON lines or, with -framing binary, the length-prefixed
// binary records of internal/wire — from several concurrent connections,
// honouring the server's 429 + Retry-After backpressure. Each fleet job's
// samples always ride the same connection, so per-job sample order is
// preserved end to end and server-side predictions are bit-identical to an
// in-process fleet.Monitor fed the same replay, whichever framing carried
// them.
//
// It reports client-observed ingest throughput and request latency
// percentiles, then reads the fleet snapshot back and scores the server's
// final classifications against the simulation's ground truth. With
// -events it additionally holds a GET /v1/events SSE subscription open for
// the duration of the run and reports how many events of each type the
// push plane delivered.
//
// Usage:
//
//	wccload -addr http://127.0.0.1:8077 -jobs 256 -seconds 120
//	wccload -addr http://127.0.0.1:8077 -jobs 64 -scale 0.05 -batch 512 -conns 4
//
// -scale and -seed must match the serving model's training provenance for
// the accuracy report to be meaningful: wccinfo shows an artifact's
// provenance, and the defaults here match wccserve's training defaults
// (scale 0.08, seed 1) so the two commands agree out of the box.
//
// With -cluster (comma-separated node URLs of a wccserve -cluster fleet)
// each job's batches are sent straight to the node that owns the job —
// the same splitmix64 hash the nodes route by — so the happy path needs
// no server-side forwarding. A node that fails mid-run reroutes its
// batches to the next node (counted, not fatal), and the final fleet
// snapshot is the union of every node's.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/drift"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "base URL of the wccserve -listen API")
	jobs := flag.Int("jobs", 256, "number of concurrent fleet jobs to drive")
	scale := flag.Float64("scale", 0.08, "simulation scale; must match the serving model's training provenance (wccinfo shows it) for the accuracy report to mean anything")
	seed := flag.Int64("seed", 1, "simulation seed; must match the serving model's training provenance")
	start := flag.Float64("start", 120, "job time at which replay begins (skips the class-agnostic startup phase)")
	seconds := flag.Float64("seconds", 120, "seconds of telemetry to replay per job (must exceed the server's window)")
	batch := flag.Int("batch", 256, "samples per ingest request")
	framing := flag.String("framing", "ndjson", "ingest framing: ndjson or binary (length-prefixed records, Content-Type application/x-wcc-ingest)")
	conns := flag.Int("conns", runtime.GOMAXPROCS(0), "concurrent client connections; each fleet job is pinned to one connection")
	unknownFrac := flag.Float64("unknown-frac", 0, "fraction of fleet jobs driven from out-of-distribution workload profiles; their rejection recall/precision is scored against the server's unknown verdicts")
	events := flag.Bool("events", false, "subscribe to GET /v1/events for the duration of the run and report delivered event counts by type")
	clusterURLs := flag.String("cluster", "", "comma-separated base URLs of a wccserve -cluster fleet; each job's batches go to its owning node (client-side hash), and a failing node reroutes to the next instead of aborting the run")
	adaptReport := flag.Bool("adapt", false, "read GET /v1/adapt after the run and report the continual-learning flywheel's state")
	flag.Parse()

	if err := run(config{
		addr: *addr, jobs: *jobs, scale: *scale, seed: *seed,
		start: *start, seconds: *seconds, batch: *batch, conns: *conns,
		unknownFrac: *unknownFrac, framing: *framing, events: *events,
		cluster: *clusterURLs, adapt: *adaptReport,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "wccload:", err)
		os.Exit(1)
	}
}

type config struct {
	addr           string
	jobs           int
	scale          float64
	seed           int64
	start, seconds float64
	batch          int
	conns          int
	unknownFrac    float64
	framing        string
	events         bool
	cluster        string
	adapt          bool
}

// health mirrors the server's /healthz payload.
type health struct {
	Status  string `json:"status"`
	Window  int    `json:"window"`
	Sensors int    `json:"sensors"`
	Shards  int    `json:"shards"`
}

// ingestResponse mirrors the server's per-request ingest accounting.
type ingestResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Errors   []struct {
		Line  int    `json:"line"`
		Error string `json:"error"`
	} `json:"errors"`
}

// snapshot mirrors GET /v1/jobs.
type snapshot struct {
	Count int `json:"count"`
	Jobs  []struct {
		Job     int   `json:"job"`
		Ready   bool  `json:"ready"`
		Class   *int  `json:"class"`
		Unknown *bool `json:"unknown"`
	} `json:"jobs"`
}

// driftState mirrors GET /v1/drift.
type driftState struct {
	Enabled  bool    `json:"enabled"`
	Score    float64 `json:"score"`
	Unknowns uint64  `json:"unknowns"`
}

// connStats accumulates one sender connection's observations.
type connStats struct {
	requests  int
	throttled int
	rerouted  int
	accepted  int
	rejected  int
	latencies []time.Duration
	firstErr  string
}

// reqBody is one prepared ingest request: the batch bytes plus the node
// it should land on first (always 0 outside cluster mode).
type reqBody struct {
	node int
	data []byte
}

func run(c config) error {
	if c.jobs < 1 || c.batch < 1 {
		return fmt.Errorf("need jobs ≥ 1 and batch ≥ 1")
	}
	contentType := "application/x-ndjson"
	switch c.framing {
	case "", "ndjson":
	case "binary":
		contentType = wire.IngestContentType
	default:
		return fmt.Errorf("unknown -framing %q (want ndjson or binary)", c.framing)
	}
	if c.conns < 1 {
		c.conns = 1
	}
	// In cluster mode every node URL is a routing target: job k's batches
	// go to node JobHash(k) % N first — the same splitmix64 placement the
	// nodes use — so the common case needs no server-side forwarding.
	nodes := []string{c.addr}
	if c.cluster != "" {
		nodes = strings.Split(c.cluster, ",")
		for i := range nodes {
			nodes[i] = strings.TrimRight(strings.TrimSpace(nodes[i]), "/")
		}
	}
	nodeOf := func(job int) int {
		if len(nodes) == 1 {
			return 0
		}
		return int(shard.JobHash(job) % uint64(len(nodes)))
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: c.conns}}
	hl, err := fetchHealth(client, nodes[0])
	if err != nil {
		return fmt.Errorf("server not reachable at %s: %w", nodes[0], err)
	}
	if hl.Window < 2 || hl.Sensors < 1 {
		return fmt.Errorf("server reports implausible window shape %dx%d", hl.Window, hl.Sensors)
	}
	windowSec := float64(hl.Window) * telemetry.GPUSampleDT
	if c.seconds <= windowSec {
		return fmt.Errorf("replay horizon %.0fs must exceed the server's %.0fs window", c.seconds, windowSec)
	}

	// The same source selection and fan-out as wccserve's demo mode: fleet
	// job k replays source k % len(sources).
	sim, err := telemetry.NewSimulator(telemetry.Config{Seed: c.seed, Scale: c.scale, GapRate: 1})
	if err != nil {
		return err
	}
	var sources []*telemetry.Job
	for _, j := range sim.Jobs() {
		if j.Duration >= c.start+windowSec+1 {
			sources = append(sources, j)
		}
	}
	if len(sources) == 0 {
		return fmt.Errorf("no simulated job runs past start %.0fs + the %.0fs window", c.start, windowSec)
	}
	// Fleet jobs past mix.IDJobs replay out-of-distribution profiles, the
	// same mix wccserve's demo mode drives; the server should reject them
	// as unknown.
	mix, err := telemetry.PlanFleetMix(sources, c.jobs, c.unknownFrac, c.seed)
	if err != nil {
		return err
	}
	replay, err := telemetry.NewReplay(mix.ReplaySources(), 0, c.start, c.start+c.seconds)
	if err != nil {
		return err
	}
	fanout := mix.Fanout

	// Materialise each connection's request bodies up front, so the timed
	// phase measures serving, not sample encoding. Fleet job k is pinned to
	// connection k % conns, preserving per-job sample order, and batches
	// are kept per (connection, node) so one request never mixes jobs
	// owned by different cluster nodes.
	bodies := make([][]reqBody, c.conns)
	cur := make([][][]byte, c.conns)
	lines := make([][]int, c.conns)
	for w := range cur {
		cur[w] = make([][]byte, len(nodes))
		lines[w] = make([]int, len(nodes))
	}
	flush := func(w, nd int) {
		if lines[w][nd] == 0 {
			return
		}
		bodies[w] = append(bodies[w], reqBody{node: nd, data: cur[w][nd]})
		cur[w][nd], lines[w][nd] = nil, 0
	}
	totalSamples := 0
	for {
		s, ok := replay.Next()
		if !ok {
			break
		}
		var line []byte
		if contentType != wire.IngestContentType {
			line, err = json.Marshal(struct {
				Job    int       `json:"job"`
				Values []float64 `json:"values"`
			}{0, s.Values})
			if err != nil {
				return err
			}
		}
		for _, k := range fanout[s.JobID] {
			w, nd := k%c.conns, nodeOf(k)
			if contentType == wire.IngestContentType {
				cur[w][nd] = wire.AppendIngestRecord(cur[w][nd], int64(k), s.Values)
			} else {
				// Patch the job ID per fan-out target instead of
				// re-marshalling the seven floats each time.
				patched := append([]byte(`{"job":`+strconv.Itoa(k)+`,`), line[len(`{"job":0,`):]...)
				cur[w][nd] = append(cur[w][nd], patched...)
				cur[w][nd] = append(cur[w][nd], '\n')
			}
			totalSamples++
			if lines[w][nd]++; lines[w][nd] == c.batch {
				flush(w, nd)
			}
		}
	}
	for w := 0; w < c.conns; w++ {
		for nd := range nodes {
			flush(w, nd)
		}
	}

	requests := 0
	for w := range bodies {
		requests += len(bodies[w])
	}
	serving := "an unsharded fleet"
	if hl.Shards > 0 {
		serving = fmt.Sprintf("%d serving shards", hl.Shards)
	}
	framingName := "ndjson"
	if contentType == wire.IngestContentType {
		framingName = "binary"
	}
	fmt.Printf("driving %d fleet jobs (%d out-of-distribution) over %d telemetry series into %s: %d samples in %d requests (%d-sample %s batches) across %d connections\n",
		c.jobs, mix.UnknownJobs, replay.NumJobs(), serving, totalSamples, requests, c.batch, framingName, c.conns)
	if len(nodes) > 1 {
		fmt.Printf("cluster mode: %d nodes, batches routed by client-side job hash\n", len(nodes))
	}

	// Optional event-plane audit: hold one SSE subscription open across the
	// run so the report can say what the push plane delivered, not just what
	// the poll endpoints show after the fact.
	var ev *eventWatch
	if c.events {
		ev, err = watchEvents(client, nodes[0])
		if err != nil {
			return fmt.Errorf("subscribing to /v1/events: %w", err)
		}
	}

	stats := make([]connStats, c.conns)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < c.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sendAll(client, nodes, contentType, bodies[w], &stats[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var all connStats
	for _, st := range stats {
		if st.firstErr != "" && all.firstErr == "" {
			all.firstErr = st.firstErr
		}
		all.requests += st.requests
		all.throttled += st.throttled
		all.rerouted += st.rerouted
		all.accepted += st.accepted
		all.rejected += st.rejected
		all.latencies = append(all.latencies, st.latencies...)
	}
	if all.firstErr != "" {
		return fmt.Errorf("ingest failed: %s", all.firstErr)
	}

	fmt.Printf("\nsent %d samples in %s\n", totalSamples, elapsed.Round(time.Millisecond))
	fmt.Printf("  ingest throughput: %.0f samples/sec (client-observed, end to end)\n", float64(all.accepted)/elapsed.Seconds())
	fmt.Printf("  requests:          %d ok, %d throttled (429, retried), %d rerouted, %d line errors\n",
		all.requests, all.throttled, all.rerouted, all.rejected)
	fmt.Printf("  request latency:   p50 %s  p95 %s  p99 %s  max %s\n",
		percentile(all.latencies, 0.50), percentile(all.latencies, 0.95),
		percentile(all.latencies, 0.99), percentile(all.latencies, 1.0))
	if all.accepted != totalSamples {
		if len(nodes) == 1 {
			return fmt.Errorf("server accepted %d of %d samples", all.accepted, totalSamples)
		}
		// A cluster replay that crossed a node failure has bounded,
		// accounted loss: report it instead of failing the run.
		fmt.Printf("  note: cluster accepted %d of %d samples (%d lost across reroutes)\n",
			all.accepted, totalSamples, totalSamples-all.accepted)
	}

	// Read the fleet back and score it against the simulation's truth:
	// classification accuracy over the labelled jobs, unknown-rejection
	// recall/precision over the out-of-distribution jobs.
	// In cluster mode each node's snapshot covers only the jobs it owns;
	// the union is the fleet.
	snap := &snapshot{}
	for _, nd := range nodes {
		s, err := fetchSnapshot(client, nd)
		if err != nil {
			if len(nodes) > 1 {
				fmt.Printf("  note: snapshot from %s failed (%v); its jobs are missing from the score\n", nd, err)
				continue
			}
			return err
		}
		snap.Count += s.Count
		snap.Jobs = append(snap.Jobs, s.Jobs...)
	}
	correct, scored := 0, 0
	var tally drift.RejectionTally
	for _, row := range snap.Jobs {
		if row.Class == nil || row.Job >= c.jobs {
			continue
		}
		tally.Add(mix.IsUnknown(row.Job), row.Unknown != nil && *row.Unknown)
		if mix.IsUnknown(row.Job) {
			continue
		}
		scored++
		if telemetry.Class(*row.Class) == mix.Sources[row.Job%len(mix.Sources)].Class {
			correct++
		}
	}
	fmt.Printf("  fleet snapshot:    %d jobs registered on the server\n", snap.Count)
	if scored > 0 {
		fmt.Printf("  live accuracy:     %.1f%% (%d/%d labelled jobs classified)\n",
			100*float64(correct)/float64(scored), scored, mix.IDJobs)
	}
	switch ds, err := fetchDrift(client, nodes[0]); {
	case err != nil:
		// A transport or server failure is not "drift disabled": say so,
		// or an operator (and CI's recall gate) mis-diagnoses the cause.
		return fmt.Errorf("reading /v1/drift: %w", err)
	case ds.Enabled:
		fmt.Printf("  drift score:       %.3f (server-side max per-sensor PSI, %d unknown verdicts)\n", ds.Score, ds.Unknowns)
		fmt.Print(tally.Report())
	case mix.UnknownJobs > 0:
		fmt.Printf("  note: %d out-of-distribution jobs injected but the server reports no drift calibration\n", mix.UnknownJobs)
	}
	if c.adapt {
		as, err := fetchAdapt(client, nodes[0])
		if err != nil {
			return fmt.Errorf("reading /v1/adapt: %w", err)
		}
		if !as.Enabled {
			fmt.Printf("  adapt flywheel:    disabled on the server (wccserve -adapt)\n")
		} else {
			fmt.Printf("  adapt flywheel:    phase %s, %d/%d rejected windows buffered, %d families, gate ready %v, %d promotions\n",
				as.Phase, as.Buffered, as.BufferCapacity, len(as.Families), as.GateReady, as.Promotions)
			if as.Shadow != nil {
				fmt.Printf("  adapt shadow:      %d windows, agreement %.3f, unknown rate serving %.3f vs candidate %.3f\n",
					as.Shadow.Windows, as.Shadow.Agreement, as.Shadow.ServingUnknownRate, as.Shadow.CandidateUnknownRate)
			}
		}
	}
	if ev != nil {
		counts, evicted, readErr := ev.stop()
		total := 0
		var parts []string
		for _, tc := range counts {
			total += tc.n
			parts = append(parts, fmt.Sprintf("%d %s", tc.n, tc.typ))
		}
		line := "none"
		if len(parts) > 0 {
			line = strings.Join(parts, ", ")
		}
		fmt.Printf("  events delivered:  %d over SSE (%s)\n", total, line)
		if evicted {
			fmt.Printf("  note: the event subscription was evicted for falling behind (queue overflow)\n")
		}
		if readErr != nil {
			fmt.Printf("  note: the event stream failed mid-run (%v); delivery counts are a lower bound\n", readErr)
		}
	}
	return nil
}

// eventWatch counts SSE frames from one GET /v1/events subscription.
type eventWatch struct {
	body    io.ReadCloser
	mu      sync.Mutex
	counts  map[string]int
	evicted bool
	readErr error // scanner error other than our own teardown close
	done    chan struct{}
}

// watchEvents opens the subscription and starts counting; the first frame
// of each type arrives as an "event: <type>" line in the SSE framing.
func watchEvents(client *http.Client, addr string) (*eventWatch, error) {
	resp, err := client.Get(addr + "/v1/events")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("events status %d", resp.StatusCode)
	}
	w := &eventWatch{body: resp.Body, counts: make(map[string]int), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			typ, ok := strings.CutPrefix(sc.Text(), "event: ")
			if !ok {
				continue
			}
			w.mu.Lock()
			if typ == "eviction" {
				w.evicted = true
			} else {
				w.counts[typ]++
			}
			w.mu.Unlock()
		}
		// The scanner is sticky: a mid-stream read failure ends the loop
		// silently, which would undercount deliveries. stop() closes the
		// body on purpose, so that one error is expected; anything else
		// is a real stream failure the summary must disclose.
		if err := sc.Err(); err != nil && !errors.Is(err, net.ErrClosed) {
			w.mu.Lock()
			w.readErr = err
			w.mu.Unlock()
		}
	}()
	return w, nil
}

type typeCount struct {
	typ string
	n   int
}

// stop lets in-flight write-back events settle, closes the subscription,
// and returns per-type delivery counts in a stable order.
func (w *eventWatch) stop() ([]typeCount, bool, error) {
	time.Sleep(500 * time.Millisecond)
	w.body.Close()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]typeCount, 0, len(w.counts))
	for typ, n := range w.counts {
		out = append(out, typeCount{typ, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].typ < out[j].typ })
	return out, w.evicted, w.readErr
}

// adaptState mirrors the fields of GET /v1/adapt the report reads.
type adaptState struct {
	Enabled        bool   `json:"enabled"`
	Phase          string `json:"phase"`
	Buffered       int    `json:"buffered"`
	BufferCapacity int    `json:"buffer_capacity"`
	Families       []struct {
		ID    int `json:"id"`
		Count int `json:"count"`
	} `json:"families"`
	GateReady  bool   `json:"gate_ready"`
	Promotions uint64 `json:"promotions_total"`
	Shadow     *struct {
		Windows              uint64  `json:"windows"`
		Agreement            float64 `json:"agreement"`
		ServingUnknownRate   float64 `json:"serving_unknown_rate"`
		CandidateUnknownRate float64 `json:"candidate_unknown_rate"`
	} `json:"shadow"`
}

func fetchAdapt(client *http.Client, addr string) (*adaptState, error) {
	resp, err := client.Get(addr + "/v1/adapt")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("adapt status %d", resp.StatusCode)
	}
	var a adaptState
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		return nil, err
	}
	return &a, nil
}

func fetchDrift(client *http.Client, addr string) (*driftState, error) {
	resp, err := client.Get(addr + "/v1/drift")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("drift status %d", resp.StatusCode)
	}
	var d driftState
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}

// sendAll posts one connection's bodies in order, retrying 429s after the
// server's advertised backoff. A node that fails at the transport or
// answers 5xx does not kill the run: the batch reroutes to the next node
// in the ring (the cluster forwards or re-owns the jobs server-side) and
// the reroute is counted. Only a full rotation of failures — no node
// would take the batch — is fatal.
func sendAll(client *http.Client, nodes []string, contentType string, bodies []reqBody, st *connStats) {
	for _, body := range bodies {
		shift := 0
		for {
			addr := nodes[(body.node+shift)%len(nodes)]
			reqStart := time.Now()
			resp, err := client.Post(addr+"/v1/ingest", contentType, bytes.NewReader(body.data))
			if err != nil {
				if shift++; shift < len(nodes) {
					st.rerouted++
					continue
				}
				st.firstErr = err.Error()
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.throttled++
				time.Sleep(retryAfter(resp))
				continue
			}
			if resp.StatusCode >= 500 {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if shift++; shift < len(nodes) {
					st.rerouted++
					continue
				}
				st.firstErr = fmt.Sprintf("status %d from every node", resp.StatusCode)
				return
			}
			var ir ingestResponse
			decErr := json.NewDecoder(resp.Body).Decode(&ir)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || decErr != nil {
				st.firstErr = fmt.Sprintf("status %d (decode: %v)", resp.StatusCode, decErr)
				return
			}
			st.requests++
			st.latencies = append(st.latencies, time.Since(reqStart))
			st.accepted += ir.Accepted
			st.rejected += ir.Rejected
			if ir.Rejected > 0 && st.firstErr == "" && len(ir.Errors) > 0 {
				st.firstErr = fmt.Sprintf("line %d: %s", ir.Errors[0].Line, ir.Errors[0].Error)
				return
			}
			break
		}
	}
}

// retryAfter parses the server's backoff hint, defaulting to 50ms so a
// missing header cannot stall the driver.
func retryAfter(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 50 * time.Millisecond
}

func fetchHealth(client *http.Client, addr string) (*health, error) {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	if h.Status != "ok" {
		return nil, fmt.Errorf("server health is %q", h.Status)
	}
	return &h, nil
}

func fetchSnapshot(client *http.Client, addr string) (*snapshot, error) {
	resp, err := client.Get(addr + "/v1/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("snapshot status %d", resp.StatusCode)
	}
	var s snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// percentile returns the q-quantile of the observed durations (nearest-rank).
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}
