// Command wccinfo inspects this project's on-disk formats:
//
//   - challenge .npz archives (member arrays, shapes, dtypes, label
//     distribution, basic sensor statistics) — both wccgen output and the
//     real challenge downloads;
//   - .wcc model artifacts written by wcctrain -o / repro.SaveModel (format
//     version, model kind, classes, training provenance, section table).
//
// Artifacts are recognised by magic sniffing, not extension, so renamed
// files still inspect correctly.
//
// Usage:
//
//	wccinfo data/60-middle-1.npz
//	wccinfo -stats data/60-middle-1.npz
//	wccinfo rf-cov.wcc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/npz"
	"repro/internal/telemetry"
)

func main() {
	stats := flag.Bool("stats", false, "print per-sensor statistics of X_train (.npz only)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wccinfo [-stats] <file.npz | file.wcc>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *stats); err != nil {
		fmt.Fprintln(os.Stderr, "wccinfo:", err)
		os.Exit(1)
	}
}

func run(path string, stats bool) error {
	if artifact.Sniff(path) {
		return runArtifact(path)
	}
	ar, err := npz.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s:\n", path)
	for _, name := range ar.Names() {
		a, _ := ar.Get(name)
		fmt.Printf("  %-12s shape=%v dtype=%s\n", name, a.Shape, a.DType)
	}

	if ya, ok := ar.Get("y_train"); ok {
		labels, err := ya.AsInts()
		if err != nil {
			return err
		}
		counts := map[int]int{}
		for _, y := range labels {
			counts[y]++
		}
		classes := make([]int, 0, len(counts))
		for c := range counts {
			classes = append(classes, c)
		}
		sort.Ints(classes)
		fmt.Printf("\n  label distribution (train, %d classes):\n", len(classes))
		var names []string
		if ma, ok := ar.Get("model_train"); ok {
			names = ma.Strings
		}
		for _, c := range classes {
			label := fmt.Sprintf("class %d", c)
			if names != nil {
				for i, y := range labels {
					if y == c {
						label = names[i]
						break
					}
				}
			}
			fmt.Printf("    %-16s %5d\n", label, counts[c])
		}
	}

	if stats {
		xa, ok := ar.Get("X_train")
		if !ok || len(xa.Shape) != 3 {
			return fmt.Errorf("no 3-D X_train in archive")
		}
		data, err := xa.AsFloat64s()
		if err != nil {
			return err
		}
		n, t, c := xa.Shape[0], xa.Shape[1], xa.Shape[2]
		fmt.Printf("\n  per-sensor statistics over %d trials x %d samples:\n", n, t)
		for ch := 0; ch < c; ch++ {
			var sum, sq, min, max float64
			min = 1e300
			max = -1e300
			count := 0
			for i := 0; i < n; i++ {
				for s := 0; s < t; s++ {
					v := data[(i*t+s)*c+ch]
					sum += v
					sq += v * v
					if v < min {
						min = v
					}
					if v > max {
						max = v
					}
					count++
				}
			}
			mean := sum / float64(count)
			std := sq/float64(count) - mean*mean
			if std < 0 {
				std = 0
			}
			name := fmt.Sprintf("sensor %d", ch)
			if ch < int(telemetry.NumGPUSensors) {
				name = telemetry.GPUSensor(ch).String()
			}
			fmt.Printf("    %-24s mean=%10.2f std²=%12.2f min=%10.2f max=%10.2f\n",
				name, mean, std, min, max)
		}
	}
	return nil
}

// runArtifact prints a .wcc model artifact's metadata, drift calibration
// and section table without decoding the model payload.
func runArtifact(path string) error {
	info, err := artifact.ReadInfoDetail(path)
	if err != nil {
		return err
	}
	m := info.Meta
	fmt.Printf("%s: model artifact (format v%d)\n", path, info.FormatVersion)
	fmt.Printf("  kind:      %s\n", m.Kind)
	if m.Features != "" {
		fmt.Printf("  features:  %s\n", m.Features)
	}
	if m.Window > 0 && m.Sensors > 0 {
		fmt.Printf("  window:    %dx%d\n", m.Window, m.Sensors)
	}
	if m.Dataset != "" {
		fmt.Printf("  trained:   %s (scale %.2f, seed %d)\n", m.Dataset, m.Scale, m.Seed)
	}
	if m.Accuracy > 0 {
		fmt.Printf("  accuracy:  %.2f%% on the held-out test split\n", m.Accuracy*100)
	}
	if m.CreatedUnix > 0 {
		fmt.Printf("  created:   %s", time.Unix(m.CreatedUnix, 0).UTC().Format(time.RFC3339))
		if m.Tool != "" {
			fmt.Printf(" by %s", m.Tool)
		}
		fmt.Println()
	}
	if len(m.ClassNames) > 0 {
		fmt.Printf("  classes:   %d (%s, ...)\n", len(m.ClassNames),
			strings.Join(m.ClassNames[:min(4, len(m.ClassNames))], ", "))
	}
	if d := info.Drift; d != nil {
		fmt.Printf("  drift:     open-set rejection at quantile %.3g (min conf %.3f, min margin %.3f, max energy %.3f, T %.2g)",
			d.Threshold.Quantile, d.Threshold.MinConf, d.Threshold.MinMargin,
			d.Threshold.MaxEnergy, d.Threshold.Temperature)
		if d.Feat != nil && d.Threshold.MaxFeatDist > 0 {
			fmt.Printf("; feature gate over %d train rows (max distance %.3f)", d.Feat.Train.Rows, d.Threshold.MaxFeatDist)
		}
		fmt.Printf("; reference %d sensors x %d bins\n", d.Ref.Sensors(), d.Ref.Bins)
	}
	fmt.Println("  sections:")
	for _, s := range info.Sections {
		fmt.Printf("    %-8s %8d bytes  crc32 %08x\n", s.Name, s.Length, s.CRC)
	}
	return nil
}
