// Command wccgen generates the simulated MIT Supercloud labelled dataset
// and writes the seven challenge datasets as .npz archives in the exact
// layout the real challenge distributes (X_train, y_train, model_train,
// X_test, y_test, model_test), plus the scheduler log as CSV.
//
// Usage:
//
//	wccgen -scale 0.3 -out ./data
//	wccgen -scale 1.0 -datasets 60-middle-1,60-random-1 -out ./data
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 0.3, "labelled-dataset scale (1.0 = the paper's 3,430 jobs)")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "data", "output directory")
	datasets := flag.String("datasets", "all", "comma-separated dataset names, or 'all'")
	schedLog := flag.Bool("schedlog", true, "also write the scheduler log CSV")
	flag.Parse()

	if err := run(*scale, *seed, *out, *datasets, *schedLog); err != nil {
		fmt.Fprintln(os.Stderr, "wccgen:", err)
		os.Exit(1)
	}
}

func run(scale float64, seed int64, out, datasets string, schedLog bool) error {
	sim, err := telemetry.NewSimulator(telemetry.Config{Seed: seed, Scale: scale, GapRate: 1})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	fmt.Printf("generated %d jobs, %d GPU series\n", len(sim.Jobs()), sim.TotalGPUSeries())

	var specs []dataset.Spec
	if datasets == "all" {
		specs = dataset.ChallengeSpecs
	} else {
		for _, name := range strings.Split(datasets, ",") {
			spec, ok := dataset.SpecByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown dataset %q", name)
			}
			specs = append(specs, spec)
		}
	}

	for _, spec := range specs {
		opts := dataset.DefaultBuildOptions()
		opts.Seed = seed
		ch, err := dataset.Build(sim, spec, opts)
		if err != nil {
			return err
		}
		ar, err := ch.ToArchive()
		if err != nil {
			return err
		}
		path := filepath.Join(out, spec.Name+".npz")
		if err := ar.WriteFile(path); err != nil {
			return err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s train=%-6d test=%-5d -> %s (%.1f MB)\n",
			spec.Name, ch.Train.Len(), ch.Test.Len(), path, float64(fi.Size())/1e6)
	}

	if schedLog {
		path := filepath.Join(out, "scheduler_log.csv")
		if err := writeSchedLog(sim, path); err != nil {
			return err
		}
		fmt.Printf("scheduler log -> %s\n", path)
	}
	return nil
}

func writeSchedLog(sim *telemetry.Simulator, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"job_id", "user", "partition", "model", "nodes", "gpus", "submit_s", "start_s", "end_s", "exit_code"}); err != nil {
		return err
	}
	for _, e := range sim.SchedulerLog() {
		rec := []string{
			strconv.Itoa(e.JobID), e.UserHash, e.Partition, e.ModelName,
			strconv.Itoa(e.Nodes), strconv.Itoa(e.GPUs),
			fmt.Sprintf("%.1f", e.SubmitSec), fmt.Sprintf("%.1f", e.StartSec),
			fmt.Sprintf("%.1f", e.EndSec), strconv.Itoa(e.ExitCode),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
