// Command wccvet runs the repo's custom serving-plane invariant
// analyzers (internal/analysis/...) over Go packages:
//
//	go run ./cmd/wccvet ./...          # analyze everything, CI form
//	go vet -vettool=$(which wccvet) ./...  # equivalent, explicit form
//
// The binary is both the driver and the tool. Invoked with package
// patterns it re-executes `go vet -vettool=<itself>` so the go command
// does what it is uniquely good at — loading packages, caching facts,
// analyzing in dependency order — and invoked by go vet (first argument
// is a flag or a *.cfg file, the vet tool protocol) it serves the
// unitchecker side. This is the supported shape for custom vet tools
// that cannot assume the multichecker's go/packages loader is available;
// this repo vendors only the x/tools subset the Go toolchain itself
// vendors, which includes unitchecker but not multichecker.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/boundedqueue"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lockscope"
	"repro/internal/analysis/nakedtime"
	"repro/internal/analysis/stickyerr"
)

func main() {
	args := os.Args[1:]

	// The vet tool protocol: `go vet` invokes the tool as
	// `wccvet -V=full`, `wccvet -flags`, then `wccvet <unit>.cfg`.
	if len(args) > 0 && (strings.HasPrefix(args[0], "-") || strings.HasSuffix(args[0], ".cfg")) {
		unitchecker.Main(
			lockscope.Analyzer,
			hotpath.Analyzer,
			stickyerr.Analyzer,
			boundedqueue.Analyzer,
			nakedtime.Analyzer,
		) // exits
	}

	// Driver mode: hand the package patterns to go vet with ourselves as
	// the tool. os.Executable works under `go run` too — the temporary
	// binary exists for as long as this process does.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wccvet: locating own binary: %v\n", err)
		os.Exit(2)
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "wccvet: running go vet: %v\n", err)
		os.Exit(2)
	}
}
