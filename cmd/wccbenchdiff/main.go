// Command wccbenchdiff is the benchmark-regression guard behind CI's perf
// step: it parses `go test -bench` output into a JSON benchmark report and
// compares the report's throughput metrics against a committed baseline,
// failing when any metric regressed past the allowed fraction.
//
// Usage:
//
//	go test -run '^$' -bench '...' . | tee bench.txt
//	wccbenchdiff -parse bench.txt -out BENCH_PR.json -baseline BENCH_BASELINE.json
//
//	wccbenchdiff -parse bench.txt -out BENCH_BASELINE.json   # (re)record a baseline
//
// Only higher-is-better throughput metrics (units ending in "/s": the
// serving benches' samples/s, cls/s, rows/s, plus go test's MB/s) are
// guarded; ns/op and allocation metrics are recorded in the JSON for the
// perf trajectory but not gated, because wall-clock per iteration is far
// noisier across runners than sustained throughput. A benchmark present in
// the baseline but missing from the report fails the comparison — a
// silently dropped benchmark must not silently drop its guard.
//
// Absolute throughput only compares on comparable hardware, so each report
// records its environment (Go version, GOMAXPROCS) and a comparison whose
// environments differ runs in report-only mode: deltas print, missing
// benchmarks still fail, but throughput regressions only warn, with an
// instruction to re-record the baseline on the current hardware. Gating a
// 25% budget across machine generations would otherwise hide real
// regressions behind hardware speedups (or fail every run on slower
// machines).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Report is the JSON benchmark record (BENCH_BASELINE.json / BENCH_PR.json).
type Report struct {
	// Go and MaxProcs record the environment the numbers came from.
	Go       string `json:"go"`
	MaxProcs int    `json:"maxprocs"`
	// Benchmarks maps benchmark name (with the -N GOMAXPROCS suffix
	// stripped) to its metrics, unit → value.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	parse := flag.String("parse", "", "file holding `go test -bench` output to parse (required)")
	out := flag.String("out", "", "write the parsed report as JSON to this path")
	baseline := flag.String("baseline", "", "baseline report to compare throughput metrics against")
	maxRegress := flag.Float64("max-regress", 0.25, "fail when a guarded metric drops more than this fraction below the baseline")
	flag.Parse()

	if *parse == "" {
		fmt.Fprintln(os.Stderr, "wccbenchdiff: -parse is required")
		os.Exit(2)
	}
	if err := run(*parse, *out, *baseline, *maxRegress); err != nil {
		fmt.Fprintln(os.Stderr, "wccbenchdiff:", err)
		os.Exit(1)
	}
}

func run(parsePath, outPath, baselinePath string, maxRegress float64) error {
	raw, err := os.ReadFile(parsePath)
	if err != nil {
		return err
	}
	report, err := parseBenchOutput(string(raw))
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found in %s", parsePath)
	}
	if outPath != "" {
		js, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d benchmark entries to %s\n", len(report.Benchmarks), outPath)
	}
	if baselinePath == "" {
		return nil
	}
	base, err := readReport(baselinePath)
	if err != nil {
		return err
	}
	return compare(base, report, maxRegress)
}

func readReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName/sub-8   	     123	   9876 ns/op	  4567 samples/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// parseBenchOutput extracts every benchmark result line's metrics.
func parseBenchOutput(text string) (*Report, error) {
	report := &Report{
		Go:         runtime.Version(),
		MaxProcs:   runtime.GOMAXPROCS(0),
		Benchmarks: map[string]map[string]float64{},
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, rest := m[1], m[3]
		fields := strings.Fields(rest)
		metrics := map[string]float64{}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad metric value %q", name, fields[i])
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			report.Benchmarks[name] = metrics
		}
	}
	return report, sc.Err()
}

// guarded reports whether a metric unit is a gated throughput metric.
func guarded(unit string) bool { return strings.HasSuffix(unit, "/s") }

// compare checks every guarded baseline metric against the current report.
func compare(base, cur *Report, maxRegress float64) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	envMatch := base.Go == cur.Go && base.MaxProcs == cur.MaxProcs
	if !envMatch {
		fmt.Printf("WARNING: baseline environment (%s, GOMAXPROCS %d) differs from this run (%s, GOMAXPROCS %d);\n"+
			"         throughput is not comparable across hardware, so regressions are reported but NOT gated.\n"+
			"         Re-record the baseline on this hardware to arm the guard:\n"+
			"         go test -run '^$' -bench ... . > bench.txt && wccbenchdiff -parse bench.txt -out BENCH_BASELINE.json\n",
			base.Go, base.MaxProcs, cur.Go, cur.MaxProcs)
	}

	var failures []string
	var regressions int
	checked := 0
	for _, name := range names {
		curMetrics, ok := cur.Benchmarks[name]
		hasGuarded := false
		units := make([]string, 0, len(base.Benchmarks[name]))
		for unit := range base.Benchmarks[name] {
			if guarded(unit) {
				hasGuarded = true
			}
			units = append(units, unit)
		}
		sort.Strings(units)
		if !hasGuarded {
			continue
		}
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", name))
			continue
		}
		for _, unit := range units {
			if !guarded(unit) {
				continue
			}
			baseV := base.Benchmarks[name][unit]
			curV, ok := curMetrics[unit]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: metric %s missing from this run", name, unit))
				continue
			}
			checked++
			delta := 0.0
			if baseV > 0 {
				delta = curV/baseV - 1
			}
			status := "ok"
			if baseV > 0 && curV < baseV*(1-maxRegress) {
				regressions++
				if envMatch {
					status = "REGRESSED"
					failures = append(failures, fmt.Sprintf("%s %s: %.4g vs baseline %.4g (%+.1f%%, limit -%.0f%%)",
						name, unit, curV, baseV, 100*delta, 100*maxRegress))
				} else {
					status = "regressed (not gated: baseline from different hardware)"
				}
			}
			fmt.Printf("%-60s %-10s %12.4g  baseline %12.4g  %+7.1f%%  %s\n",
				name, unit, curV, baseV, 100*delta, status)
		}
	}
	if checked == 0 {
		return fmt.Errorf("baseline has no guarded throughput metrics to compare")
	}
	if len(failures) > 0 {
		return fmt.Errorf("throughput regression past %.0f%%:\n  %s",
			100*maxRegress, strings.Join(failures, "\n  "))
	}
	switch {
	case !envMatch:
		fmt.Printf("benchmark guard in report-only mode: %d throughput metrics compared, %d past the %.0f%% budget (not gated across hardware)\n",
			checked, regressions, 100*maxRegress)
	default:
		fmt.Printf("benchmark guard passed: %d throughput metrics within %.0f%% of baseline\n", checked, 100*maxRegress)
	}
	return nil
}
