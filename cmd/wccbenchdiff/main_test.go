package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkServingForest/single256-4         	     100	  11859650 ns/op	     21586 rows/s
BenchmarkServingForest/batched256-4        	     272	   4404563 ns/op	     58122 rows/s
BenchmarkFleetThroughput/jobs256-4         	       7	 160393834 ns/op	   5114649 samples/s	     11403 cls/s
BenchmarkServerIngestHTTP-4                	     326	   3699214 ns/op	  18.09 MB/s	     69204 samples/s
PASS
ok  	repro	12.576s
`

func parsed(t *testing.T) *Report {
	t.Helper()
	r, err := parseBenchOutput(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseBenchOutput(t *testing.T) {
	r := parsed(t)
	if len(r.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(r.Benchmarks))
	}
	m, ok := r.Benchmarks["BenchmarkFleetThroughput/jobs256"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", r.Benchmarks)
	}
	if m["samples/s"] != 5114649 || m["cls/s"] != 11403 {
		t.Fatalf("metrics wrong: %v", m)
	}
	if m["ns/op"] != 160393834 {
		t.Fatalf("ns/op not recorded: %v", m)
	}
	if r.Benchmarks["BenchmarkServerIngestHTTP"]["MB/s"] != 18.09 {
		t.Fatalf("MB/s not parsed: %v", r.Benchmarks["BenchmarkServerIngestHTTP"])
	}
}

func TestComparePassesWithinTolerance(t *testing.T) {
	base := parsed(t)
	cur := parsed(t)
	// 20% slower is inside the 25% budget.
	cur.Benchmarks["BenchmarkServingForest/batched256"]["rows/s"] *= 0.80
	if err := compare(base, cur, 0.25); err != nil {
		t.Fatalf("within-tolerance run failed: %v", err)
	}
	// Faster is always fine.
	cur.Benchmarks["BenchmarkFleetThroughput/jobs256"]["samples/s"] *= 3
	if err := compare(base, cur, 0.25); err != nil {
		t.Fatalf("faster run failed: %v", err)
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	base := parsed(t)
	cur := parsed(t)
	cur.Benchmarks["BenchmarkFleetThroughput/jobs256"]["samples/s"] *= 0.5
	err := compare(base, cur, 0.25)
	if err == nil {
		t.Fatal("50% throughput regression passed the guard")
	}
	if !strings.Contains(err.Error(), "BenchmarkFleetThroughput/jobs256 samples/s") {
		t.Fatalf("failure does not name the regressed metric: %v", err)
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	base := parsed(t)
	cur := parsed(t)
	delete(cur.Benchmarks, "BenchmarkServerIngestHTTP")
	if err := compare(base, cur, 0.25); err == nil {
		t.Fatal("dropped benchmark passed the guard")
	}
}

func TestCompareIgnoresSlowerNsPerOp(t *testing.T) {
	base := parsed(t)
	cur := parsed(t)
	// ns/op is recorded but not gated: only the "/s" throughput metrics
	// guard the perf trajectory.
	cur.Benchmarks["BenchmarkFleetThroughput/jobs256"]["ns/op"] *= 10
	if err := compare(base, cur, 0.25); err != nil {
		t.Fatalf("ns/op noise failed the guard: %v", err)
	}
}

func TestCompareEnvMismatchReportsOnly(t *testing.T) {
	base := parsed(t)
	cur := parsed(t)
	base.MaxProcs = cur.MaxProcs + 3 // baseline from different hardware
	cur.Benchmarks["BenchmarkFleetThroughput/jobs256"]["samples/s"] *= 0.5
	if err := compare(base, cur, 0.25); err != nil {
		t.Fatalf("cross-hardware regression gated: %v", err)
	}
	// Structural failures still gate: a dropped benchmark is a guard hole
	// on any hardware.
	delete(cur.Benchmarks, "BenchmarkServerIngestHTTP")
	if err := compare(base, cur, 0.25); err == nil {
		t.Fatal("dropped benchmark passed in report-only mode")
	}
}

func TestCompareEmptyBaseline(t *testing.T) {
	empty := &Report{Benchmarks: map[string]map[string]float64{}}
	if err := compare(empty, parsed(t), 0.25); err == nil {
		t.Fatal("empty baseline compared successfully")
	}
}
