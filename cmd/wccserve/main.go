// Command wccserve demonstrates the serving path: it trains the paper's
// best baseline offline, then replays live telemetry for a configurable
// number of concurrent jobs through the fleet monitor and reports serving
// throughput — samples/sec ingested, classifications/sec produced by the
// batched inference ticks, and tick latency percentiles.
//
// Usage:
//
//	wccserve -jobs 256 -seconds 75
//	wccserve -jobs 64 -scale 0.05 -trees 50 -workers 8 -tick 10ms
//
// When -jobs exceeds the simulated population of sufficiently long jobs,
// telemetry series are fanned out to multiple fleet job IDs, so arbitrarily
// large fleets can be driven from a small simulation.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/telemetry"
)

func main() {
	jobs := flag.Int("jobs", 64, "number of concurrent jobs to monitor")
	scale := flag.Float64("scale", 0.08, "simulation scale (1.0 = the paper's 3,430 jobs)")
	seed := flag.Int64("seed", 1, "simulation and training seed")
	trees := flag.Int("trees", 100, "random-forest ensemble size")
	start := flag.Float64("start", 120, "job time at which replay begins (skips the class-agnostic startup phase)")
	seconds := flag.Float64("seconds", 75, "seconds of telemetry to replay per job")
	shards := flag.Int("shards", 0, "fleet registry shards (0 = default)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent ingest goroutines")
	tick := flag.Duration("tick", 10*time.Millisecond, "batched inference interval")
	flag.Parse()

	if err := run(*jobs, *scale, *seed, *trees, *start, *seconds, *shards, *workers, *tick); err != nil {
		fmt.Fprintln(os.Stderr, "wccserve:", err)
		os.Exit(1)
	}
}

func run(jobs int, scale float64, seed int64, trees int, start, seconds float64, shards, workers int, tick time.Duration) error {
	if jobs < 1 {
		return fmt.Errorf("need at least one job, got %d", jobs)
	}
	if workers < 1 {
		workers = 1
	}

	fmt.Printf("offline phase: training RF-Cov (%d trees) on 60-middle-1 at scale %.2f...\n", trees, scale)
	ds, err := repro.GenerateDataset("60-middle-1", scale, seed)
	if err != nil {
		return err
	}
	res, err := repro.TrainRFCov(ds, trees, seed)
	if err != nil {
		return err
	}
	fmt.Printf("  offline test accuracy: %.2f%%\n\n", res.Accuracy*100)

	window := ds.Challenge.Train.X.T
	sensors := ds.Challenge.Train.X.C
	windowSec := float64(window) * telemetry.GPUSampleDT
	if seconds <= windowSec {
		return fmt.Errorf("replay horizon %.0fs must exceed the %.0fs window", seconds, windowSec)
	}

	// Source jobs must run long enough to fill a window after the start
	// offset; replaying mid-job keeps the live windows in the same regime as
	// the 60-middle training windows.
	var sources []*telemetry.Job
	for _, j := range ds.Sim.Jobs() {
		if j.Duration >= start+windowSec+1 {
			sources = append(sources, j)
		}
	}
	if len(sources) == 0 {
		return fmt.Errorf("no simulated job runs past start %.0fs + the %.0fs window", start, windowSec)
	}
	if len(sources) > jobs {
		sources = sources[:jobs]
	}
	replay, err := telemetry.NewReplay(sources, 0, start, start+seconds)
	if err != nil {
		return err
	}
	// Fan each source series out to ceil(jobs/len) fleet IDs so any fleet
	// size can be driven: fleet job k replays source k % len(sources).
	fanout := make(map[int][]int, replay.NumJobs())
	for k := 0; k < jobs; k++ {
		src := sources[k%len(sources)]
		fanout[src.ID] = append(fanout[src.ID], k)
	}

	monitor, err := repro.NewFleet(ds, res, shards)
	if err != nil {
		return err
	}

	fmt.Printf("live phase: %d fleet jobs over %d distinct telemetry series, %dx%d windows, %d ingest workers, tick %s\n",
		jobs, replay.NumJobs(), window, sensors, workers, tick)

	// Ingest pipeline: one reader drains the time-ordered replay and routes
	// samples to workers by fleet job ID, preserving per-job sample order.
	type msg struct {
		id     int
		values []float64
	}
	chans := make([]chan msg, workers)
	for i := range chans {
		chans[i] = make(chan msg, 1024)
	}
	var ingestWG sync.WaitGroup
	ingestErr := make(chan error, workers)
	for i := range chans {
		ingestWG.Add(1)
		go func(ch chan msg) {
			defer ingestWG.Done()
			for m := range ch {
				if err := monitor.Ingest(m.id, m.values); err != nil {
					select {
					case ingestErr <- err:
					default:
					}
					for range ch {
						// Keep draining so the producer never blocks on a
						// full channel after a worker fails.
					}
					return
				}
			}
		}(chans[i])
	}

	// Ticker: batched inference at a fixed cadence while ingest runs.
	var tickDurations []time.Duration
	tickDone := make(chan error, 1)
	stopTicks := make(chan struct{})
	go func() {
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		for {
			select {
			case <-stopTicks:
				tickDone <- nil
				return
			case <-ticker.C:
				t0 := time.Now()
				if _, err := monitor.Tick(); err != nil {
					tickDone <- err
					return
				}
				tickDurations = append(tickDurations, time.Since(t0))
			}
		}
	}()

	wallStart := time.Now()
	for {
		s, ok := replay.Next()
		if !ok {
			break
		}
		for _, id := range fanout[s.JobID] {
			chans[id%workers] <- msg{id: id, values: s.Values}
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	ingestWG.Wait()
	close(stopTicks)
	if err := <-tickDone; err != nil {
		return err
	}
	select {
	case err := <-ingestErr:
		return err
	default:
	}
	// Final tick classifies whatever arrived after the last cadence tick.
	t0 := time.Now()
	if _, err := monitor.Tick(); err != nil {
		return err
	}
	tickDurations = append(tickDurations, time.Since(t0))
	elapsed := time.Since(wallStart)

	ingested := monitor.SamplesIngested()
	classed := monitor.Classifications()
	fmt.Printf("\nreplayed %d samples into %d jobs in %s\n", ingested, monitor.NumJobs(), elapsed.Round(time.Millisecond))
	fmt.Printf("  ingest throughput:  %.0f samples/sec\n", float64(ingested)/elapsed.Seconds())
	fmt.Printf("  classifications:    %d (%.0f classifications/sec over %d ticks)\n",
		classed, float64(classed)/elapsed.Seconds(), monitor.Ticks())
	fmt.Printf("  tick latency:       p50 %s  p95 %s  max %s\n",
		percentile(tickDurations, 0.50), percentile(tickDurations, 0.95), percentile(tickDurations, 1.0))

	// Live accuracy: the fleet's final belief per job against the truth.
	correct, scored := 0, 0
	for k := 0; k < jobs; k++ {
		pred, ok := monitor.Prediction(k)
		if !ok {
			continue
		}
		scored++
		if telemetry.Class(pred.Class) == sources[k%len(sources)].Class {
			correct++
		}
	}
	if scored > 0 {
		fmt.Printf("  live accuracy:      %.1f%% (%d/%d jobs classified)\n",
			100*float64(correct)/float64(scored), scored, jobs)
	}
	return nil
}

// percentile returns the q-quantile of the observed durations (nearest-rank).
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}
