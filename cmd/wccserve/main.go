// Command wccserve demonstrates the serving path: it obtains the paper's
// best baseline — either trained offline at startup, or loaded in
// milliseconds from a .wcc artifact written by wcctrain -o /
// repro.SaveModel — and serves it from the sharded core (internal/shard):
// jobs hash to independent monitor shards (-shards, default GOMAXPROCS),
// each ticking on its own goroutine. The replay demo streams live
// telemetry for a configurable number of concurrent jobs through the core
// and reports serving throughput — samples/sec ingested,
// classifications/sec produced by the batched inference ticks, and
// per-shard tick latency percentiles.
//
// Usage:
//
//	wccserve -jobs 256 -seconds 75
//	wccserve -jobs 64 -scale 0.05 -trees 50 -workers 8 -tick 10ms -shards 4
//	wccserve -model rf-cov.wcc -jobs 256 -seconds 75
//	wccserve -model rf-cov.wcc -listen 127.0.0.1:8077 -shards 8
//
// With -model no training happens: the artifact supplies the classifier,
// the scaler, the window shape, and the simulation provenance for the
// replay. While serving, the artifact path is polled (-model-poll) and a
// replaced artifact — detected by its section CRCs, so even a same-size,
// same-mtime rewrite is caught — is hot-swapped into the live fleet with
// zero downtime, installing on every shard atomically.
//
// With -listen the internal replay is skipped entirely and the fleet is
// served over the HTTP API (see internal/server; docs/API.md is the full
// reference): NDJSON batch ingest with bounded-queue backpressure,
// prediction reads, /healthz and /metrics with per-shard series. The
// artifact watcher keeps hot-swapping while the API serves; SIGINT/SIGTERM
// drains gracefully — queued batches land, then a final inference tick
// flushes pending windows on every shard before exit. cmd/wccload is the
// matching load generator.
//
// With -cluster (requires -listen and -model) the process joins an N-node
// serving fleet: jobs hash across nodes, ingest for peer-owned jobs is
// forwarded over the binary peer protocol, job reads redirect to the
// owner, and a changed artifact rolls out fleet-wide via the two-phase
// replicate/prepare/commit control plane (see internal/cluster and
// docs/API.md):
//
//	wccserve -model rf-cov.wcc -listen :8077 \
//	    -cluster http://n0:8077,http://n1:8077,http://n2:8077 -node 0
//
// When -jobs exceeds the simulated population of sufficiently long jobs,
// telemetry series are fanned out to multiple fleet job IDs, so arbitrarily
// large fleets can be driven from a small simulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/drift"
	"repro/internal/events"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

func main() {
	jobs := flag.Int("jobs", 64, "replay demo: number of concurrent jobs to monitor (ignored with -listen)")
	scale := flag.Float64("scale", 0.08, "simulation scale, 1.0 = the paper's 3,430 jobs; with -model only a fallback for artifacts lacking provenance")
	seed := flag.Int64("seed", 1, "simulation and training seed; with -model only a fallback for artifacts lacking provenance")
	trees := flag.Int("trees", 100, "random-forest ensemble size (training startup, i.e. without -model)")
	start := flag.Float64("start", 120, "replay demo: job time at which replay begins (skips the class-agnostic startup phase)")
	seconds := flag.Float64("seconds", 75, "replay demo: seconds of telemetry to replay per job (ignored with -listen)")
	shards := flag.Int("shards", 0, "serving-core shards: independent monitors with their own tick loops (0 = GOMAXPROCS)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "ingest goroutines: replay-demo senders, or the -listen ingest worker pool")
	tick := flag.Duration("tick", 10*time.Millisecond, "per-shard batched inference interval")
	model := flag.String("model", "", "serve this .wcc artifact instead of training at startup")
	modelPoll := flag.Duration("model-poll", 2*time.Second, "with -model: poll interval for hot-swapping a changed artifact (0 disables)")
	listen := flag.String("listen", "", "serve the HTTP API on this address instead of running the replay demo")
	debugAddr := flag.String("debug-addr", "", "with -listen: mount net/http/pprof on this separate address (off by default; keep it loopback-only)")
	evictAfter := flag.Duration("evict-after", 0, "with -listen: evict jobs idle longer than this (0 disables)")
	unknownFrac := flag.Float64("unknown-frac", 0, "replay demo: fraction of fleet jobs driven from out-of-distribution workload profiles (scored on rejection when the model carries a drift calibration)")
	clusterURLs := flag.String("cluster", "", "with -listen and -model: comma-separated base URLs of every cluster node in ID order; this process becomes node -node of that fleet")
	clusterNode := flag.Int("node", 0, "with -cluster: this process's node ID (index into the -cluster list)")
	clusterDir := flag.String("cluster-dir", "", "with -cluster: directory for replicated .wcc artifacts (default: a per-node dir under the OS temp dir)")
	adaptOn := flag.Bool("adapt", false, "with -listen and -model: run the continual-learning flywheel — buffer rejected windows, cluster candidate families, shadow-score a retrained candidate, promote through the hot-swap path (see /v1/adapt)")
	adaptMinSupport := flag.Int("adapt-min-support", 30, "with -adapt: rejected windows a cluster needs before it becomes a candidate class")
	adaptRadius := flag.Float64("adapt-radius", 0, "with -adapt: leader-clustering radius in standardised feature space (0 = the calibration's feature-gate cut point; raise it when rejected traffic spans several loose archetypes that should fold into one family)")
	adaptAuto := flag.Bool("adapt-auto-promote", false, "with -adapt: promote automatically when the shadow candidate passes the quality gate")
	adaptEvery := flag.Duration("adapt-every", 5*time.Second, "with -adapt: flywheel cadence (cluster/train/gate checks)")
	adaptShadowMin := flag.Int("adapt-shadow-min", 200, "with -adapt: live windows the candidate must shadow-score before the quality gate opens")
	adaptTrees := flag.Int("adapt-trees", 50, "with -adapt: candidate forest size")
	adaptMaxTrain := flag.Int("adapt-max-train", 400, "with -adapt: cap on regenerated base training windows for candidate retraining (0 = all; match the artifact's original training run)")
	adaptMaxTest := flag.Int("adapt-max-test", 150, "with -adapt: cap on regenerated base test windows (0 = all)")
	flag.Parse()

	if err := run(config{
		jobs: *jobs, scale: *scale, seed: *seed, trees: *trees,
		start: *start, seconds: *seconds, shards: *shards, workers: *workers,
		tick: *tick, model: *model, modelPoll: *modelPoll,
		listen: *listen, debugAddr: *debugAddr, evictAfter: *evictAfter, unknownFrac: *unknownFrac,
		cluster: *clusterURLs, node: *clusterNode, clusterDir: *clusterDir,
		adapt: *adaptOn, adaptMinSupport: *adaptMinSupport, adaptRadius: *adaptRadius, adaptAuto: *adaptAuto,
		adaptEvery: *adaptEvery, adaptShadowMin: *adaptShadowMin, adaptTrees: *adaptTrees,
		adaptMaxTrain: *adaptMaxTrain, adaptMaxTest: *adaptMaxTest,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "wccserve:", err)
		os.Exit(1)
	}
}

type config struct {
	jobs           int
	scale          float64
	seed           int64
	trees          int
	start, seconds float64
	shards         int
	workers        int
	tick           time.Duration
	model          string
	modelPoll      time.Duration
	listen         string
	debugAddr      string
	evictAfter     time.Duration
	unknownFrac    float64
	cluster        string
	node           int
	clusterDir     string

	adapt           bool
	adaptMinSupport int
	adaptRadius     float64
	adaptAuto       bool
	adaptEvery      time.Duration
	adaptShadowMin  int
	adaptTrees      int
	adaptMaxTrain   int
	adaptMaxTest    int
}

// acquireModel produces the sharded serving core plus the simulator and
// window shape the replay needs — by training offline (the original path)
// or by loading an artifact (milliseconds to first classification).
func acquireModel(c config) (*shard.Core, *repro.LoadedModel, *telemetry.Simulator, int, int, error) {
	if c.model == "" {
		fmt.Printf("offline phase: training RF-Cov (%d trees) on 60-middle-1 at scale %.2f...\n", c.trees, c.scale)
		ds, err := repro.GenerateDataset("60-middle-1", c.scale, c.seed)
		if err != nil {
			return nil, nil, nil, 0, 0, err
		}
		res, err := repro.TrainRFCov(ds, c.trees, c.seed)
		if err != nil {
			return nil, nil, nil, 0, 0, err
		}
		fmt.Printf("  offline test accuracy: %.2f%%\n\n", res.Accuracy*100)
		monitor, err := repro.NewShardedFleet(ds, res, c.shards)
		if err != nil {
			return nil, nil, nil, 0, 0, err
		}
		return monitor, nil, ds.Sim, ds.Challenge.Train.X.T, ds.Challenge.Train.X.C, nil
	}

	t0 := time.Now()
	lm, err := repro.LoadModel(c.model)
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	meta := lm.Artifact.Meta
	fmt.Printf("loaded %s artifact %s in %s (dataset %s, scale %.2f, seed %d, offline accuracy %.2f%%)\n\n",
		meta.Kind, c.model, time.Since(t0).Round(time.Millisecond), meta.Dataset, meta.Scale, meta.Seed, meta.Accuracy*100)

	// Replay telemetry from the training provenance so live windows come
	// from the distribution the model saw; flags fill any gaps in older
	// artifacts.
	simScale, simSeed := meta.Scale, meta.Seed
	if simScale <= 0 {
		simScale = c.scale
	}
	if simSeed == 0 {
		simSeed = c.seed
	}
	sim, err := telemetry.NewSimulator(telemetry.Config{Seed: simSeed, Scale: simScale, GapRate: 1})
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	monitor, err := lm.NewShardedFleet(c.shards)
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	return monitor, lm, sim, meta.Window, meta.Sensors, nil
}

// watchConfig builds the artifact-watcher configuration shared by the
// replay demo and the HTTP serving mode: replacement detection by section
// CRCs (artifact identity, not os.Stat, so same-size same-mtime rewrites
// are caught), and a scaler/window compatibility gate because per-job
// window state survives the swap.
func watchConfig(c config, monitor server.Monitor, lm *repro.LoadedModel) server.WatchConfig {
	return server.WatchConfig{
		Path:    c.model,
		Every:   c.modelPoll,
		Monitor: monitor,
		Window:  lm.Artifact.Meta.Window,
		Sensors: lm.Artifact.Meta.Sensors,
		Scaler:  lm.Artifact.Scaler,
		OnSwap: func(meta artifact.Metadata) {
			fmt.Printf("hot-swapped %s model (accuracy %.2f%%) into the live fleet\n", meta.Kind, meta.Accuracy*100)
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "wccserve: "+format+"\n", args...)
		},
	}
}

// serveHTTP is the -listen mode: the fleet behind the HTTP API, the
// artifact watcher hot-swapping underneath, and a graceful drain on
// SIGINT/SIGTERM.
func serveHTTP(c config) error {
	monitor, lm, _, window, sensors, err := acquireModel(c)
	if err != nil {
		return err
	}

	// Cluster mode: this process becomes one node of a replicated serving
	// fleet. Ingest routes by job hash (forwarded to the owning peer), job
	// reads redirect, and a changed -model artifact rolls out fleet-wide
	// through the two-phase replicate/prepare/commit control plane instead
	// of swapping locally.
	var node *cluster.Node
	if c.cluster != "" {
		if lm == nil {
			return fmt.Errorf("-cluster needs -model: the rolling-swap control plane replicates artifacts")
		}
		peers := strings.Split(c.cluster, ",")
		for i := range peers {
			peers[i] = strings.TrimRight(strings.TrimSpace(peers[i]), "/")
		}
		if c.clusterDir == "" {
			c.clusterDir = filepath.Join(os.TempDir(), fmt.Sprintf("wcc-cluster-node%d", c.node))
		}
		node, err = cluster.New(cluster.Config{
			Self:    c.node,
			Peers:   peers,
			Core:    monitor,
			Dir:     c.clusterDir,
			Window:  window,
			Sensors: sensors,
			Scaler:  lm.Artifact.Scaler,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "wccserve: "+format+"\n", args...)
			},
		})
		if err != nil {
			return fmt.Errorf("cluster setup: %w", err)
		}
	}
	names := make([]string, telemetry.NumClasses)
	for _, cl := range telemetry.AllClasses() {
		names[int(cl)] = cl.Name()
	}
	if lm != nil && len(lm.Artifact.Meta.ClassNames) > 0 {
		names = lm.Artifact.Meta.ClassNames
	}

	// One shared event bus: the fleet publishes prediction/unknown/swap
	// events into it, the adapt flywheel adds lifecycle events, and the
	// server streams it on /v1/events.
	bus := events.NewBus()

	// Continual-learning flywheel: rejected windows buffer into a reservoir,
	// cluster into candidate families, retrain against the artifact's
	// recorded provenance, shadow-score against live traffic, and promote by
	// writing the candidate to the watched model path — the watcher (or, in
	// cluster mode, fleet-wide distribution) then performs the actual swap,
	// so promotion and a manual `cp new.wcc model.wcc` take the same path.
	var mgr *adapt.Manager
	if c.adapt {
		if lm == nil {
			return fmt.Errorf("-adapt needs -model: candidate retraining uses the artifact's provenance")
		}
		if lm.Artifact.Drift == nil {
			return fmt.Errorf("-adapt needs a drift calibration in the artifact (train with wcctrain -drift): without open-set rejection nothing feeds the buffer")
		}
		if c.modelPoll <= 0 {
			return fmt.Errorf("-adapt needs -model-poll > 0: promotion installs candidates through the artifact watcher")
		}
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "wccserve: "+format+"\n", args...)
		}
		mgr, err = adapt.New(adapt.Config{
			FeatureDim:       adapt.FeatureDimFor(sensors),
			MinSupport:       c.adaptMinSupport,
			Radius:           c.adaptRadius,
			Calibration:      lm.Artifact.Drift,
			ShadowMinWindows: c.adaptShadowMin,
			AutoPromote:      c.adaptAuto,
			Seed:             c.seed,
			Logf:             logf,
			Trainer: &adapt.ProvenanceTrainer{
				Meta:     lm.Artifact.Meta,
				Scaler:   lm.Artifact.Scaler,
				MaxTrain: c.adaptMaxTrain,
				MaxTest:  c.adaptMaxTest,
				Trees:    c.adaptTrees,
				Logf:     logf,
			},
			Events: bus,
			Promote: func(a *artifact.Artifact) error {
				return artifact.Save(c.model, a)
			},
		})
		if err != nil {
			return err
		}
		monitor.SetAdaptObserver(mgr)
		fmt.Printf("adapt flywheel on: min-support %d, shadow-min %d, auto-promote %v (drive via /v1/adapt)\n",
			c.adaptMinSupport, c.adaptShadowMin, c.adaptAuto)
	}

	serveMonitor := server.Monitor(monitor)
	if node != nil {
		serveMonitor = node.Monitor()
	}
	srv, err := server.New(server.Config{
		Monitor:    serveMonitor,
		ClassNames: names,
		TickEvery:  c.tick,
		Workers:    c.workers,
		EvictAfter: c.evictAfter,
		Events:     bus,
		Adapt:      mgr,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "wccserve: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	if lm != nil && c.modelPoll > 0 {
		wc := watchConfig(c, monitor, lm)
		if node != nil {
			// A detected artifact change rolls out to every node instead
			// of swapping only this one.
			wc.Distribute = node.DistributeFile
		}
		// A promoted adapt candidate widens the class set; prediction
		// responses must name the novel classes as soon as the swap lands.
		inner := wc.OnSwap
		wc.OnSwap = func(meta artifact.Metadata) {
			if len(meta.ClassNames) > 0 {
				srv.SetClassNames(meta.ClassNames)
			}
			if inner != nil {
				inner(meta)
			}
		}
		go func() {
			defer close(watchDone)
			server.Watch(stopWatch, wc)
		}()
	} else {
		close(watchDone)
	}

	stopAdapt := make(chan struct{})
	adaptDone := make(chan struct{})
	if mgr != nil {
		go func() {
			defer close(adaptDone)
			mgr.Run(stopAdapt, c.adaptEvery)
		}()
	} else {
		close(adaptDone)
	}

	// Optional pprof sidecar: its own mux on its own listener, so profiling
	// never shares an address (or an exposure surface) with the public API.
	var debugSrv *http.Server
	if c.debugAddr != "" {
		dln, err := net.Listen("tcp", c.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: mux}
		fmt.Printf("pprof debug listener on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "wccserve: debug listener: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if node != nil {
		handler = node.AttachServer(srv)
		fmt.Printf("cluster node %d of %d (artifact dir %s)\n", node.Self(), node.NumNodes(), c.clusterDir)
	}
	fmt.Printf("serving HTTP API on http://%s (%dx%d windows, %d shards, tick %s)\n",
		ln.Addr(), window, sensors, monitor.NumShards(), c.tick)
	httpSrv := &http.Server{Handler: handler}
	// SSE streams hold their connections open indefinitely; ending them at
	// shutdown lets the graceful drain below complete instead of timing out.
	httpSrv.RegisterOnShutdown(srv.CloseStreams)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	if node != nil {
		node.Start()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err // Serve never returns nil before Shutdown
	case got := <-sig:
		fmt.Printf("\nreceived %s, draining...\n", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "wccserve: http shutdown: %v\n", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "wccserve: debug shutdown: %v\n", err)
		}
	}
	close(stopAdapt)
	<-adaptDone
	close(stopWatch)
	<-watchDone
	if node != nil {
		node.Stop()
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("final drain tick: %w", err)
	}
	fmt.Printf("drained: %d samples ingested into %d jobs, %d classifications over %d ticks, %d swaps, %d evictions\n",
		monitor.SamplesIngested(), monitor.NumJobs(), monitor.Classifications(),
		monitor.Ticks(), monitor.Swaps(), monitor.Evictions())
	return nil
}

func run(c config) error {
	if c.listen != "" {
		return serveHTTP(c)
	}
	if c.jobs < 1 {
		return fmt.Errorf("need at least one job, got %d", c.jobs)
	}
	if c.unknownFrac < 0 || c.unknownFrac > 1 {
		return fmt.Errorf("-unknown-frac %v must be in [0, 1]", c.unknownFrac)
	}
	if c.workers < 1 {
		c.workers = 1
	}

	monitor, lm, sim, window, sensors, err := acquireModel(c)
	if err != nil {
		return err
	}

	windowSec := float64(window) * telemetry.GPUSampleDT
	if c.seconds <= windowSec {
		return fmt.Errorf("replay horizon %.0fs must exceed the %.0fs window", c.seconds, windowSec)
	}

	// Source jobs must run long enough to fill a window after the start
	// offset; replaying mid-job keeps the live windows in the same regime as
	// the 60-middle training windows.
	var sources []*telemetry.Job
	for _, j := range sim.Jobs() {
		if j.Duration >= c.start+windowSec+1 {
			sources = append(sources, j)
		}
	}
	if len(sources) == 0 {
		return fmt.Errorf("no simulated job runs past start %.0fs + the %.0fs window", c.start, windowSec)
	}
	// Fleet jobs past mix.IDJobs replay out-of-distribution profiles; the
	// rest fan out the labelled simulation series.
	mix, err := telemetry.PlanFleetMix(sources, c.jobs, c.unknownFrac, c.seed)
	if err != nil {
		return err
	}
	replay, err := telemetry.NewReplay(mix.ReplaySources(), 0, c.start, c.start+c.seconds)
	if err != nil {
		return err
	}
	fanout := mix.Fanout

	fmt.Printf("live phase: %d fleet jobs (%d out-of-distribution) over %d distinct telemetry series, %dx%d windows, %d shards, %d ingest workers, tick %s\n",
		c.jobs, mix.UnknownJobs, replay.NumJobs(), window, sensors, monitor.NumShards(), c.workers, c.tick)

	// Artifact watcher: hot-swap a refreshed model while serving.
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	if lm != nil && c.modelPoll > 0 {
		go func() {
			defer close(watchDone)
			server.Watch(stopWatch, watchConfig(c, monitor, lm))
		}()
	} else {
		close(watchDone)
	}

	// Ingest pipeline: one reader drains the time-ordered replay and routes
	// samples to workers by fleet job ID, preserving per-job sample order.
	type msg struct {
		id     int
		values []float64
	}
	chans := make([]chan msg, c.workers)
	for i := range chans {
		chans[i] = make(chan msg, 1024)
	}
	var ingestWG sync.WaitGroup
	ingestErr := make(chan error, c.workers)
	for i := range chans {
		ingestWG.Add(1)
		go func(ch chan msg) {
			defer ingestWG.Done()
			for m := range ch {
				if err := monitor.Ingest(m.id, m.values); err != nil {
					select {
					case ingestErr <- err:
					default:
					}
					for range ch {
						// Keep draining so the producer never blocks on a
						// full channel after a worker fails.
					}
					return
				}
			}
		}(chans[i])
	}

	// Per-shard tick loops: batched inference on every shard at a fixed
	// cadence, on independent goroutines, while ingest runs.
	var tickMu sync.Mutex
	var tickDurations []time.Duration
	var tickErr error
	stopTicks := make(chan struct{})
	ticksDone := make(chan struct{})
	go func() {
		defer close(ticksDone)
		monitor.Run(stopTicks, c.tick, func(st shard.ShardTick) {
			tickMu.Lock()
			if st.Err != nil && tickErr == nil {
				tickErr = st.Err
			}
			tickDurations = append(tickDurations, st.Dur)
			tickMu.Unlock()
		})
	}()

	wallStart := time.Now()
	for {
		s, ok := replay.Next()
		if !ok {
			break
		}
		for _, id := range fanout[s.JobID] {
			chans[id%c.workers] <- msg{id: id, values: s.Values}
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	ingestWG.Wait()
	close(stopTicks)
	<-ticksDone
	if tickErr != nil {
		return tickErr
	}
	select {
	case err := <-ingestErr:
		return err
	default:
	}
	// Final tick classifies whatever arrived after the last cadence tick.
	t0 := time.Now()
	if _, err := monitor.Tick(); err != nil {
		return err
	}
	tickDurations = append(tickDurations, time.Since(t0))
	elapsed := time.Since(wallStart)
	close(stopWatch)
	<-watchDone

	ingested := monitor.SamplesIngested()
	classed := monitor.Classifications()
	fmt.Printf("\nreplayed %d samples into %d jobs in %s\n", ingested, monitor.NumJobs(), elapsed.Round(time.Millisecond))
	fmt.Printf("  ingest throughput:  %.0f samples/sec\n", float64(ingested)/elapsed.Seconds())
	fmt.Printf("  classifications:    %d (%.0f classifications/sec over %d ticks)\n",
		classed, float64(classed)/elapsed.Seconds(), monitor.Ticks())
	fmt.Printf("  tick latency:       p50 %s  p95 %s  max %s\n",
		percentile(tickDurations, 0.50), percentile(tickDurations, 0.95), percentile(tickDurations, 1.0))
	if n := monitor.Swaps(); n > 0 {
		fmt.Printf("  model hot-swaps:    %d\n", n)
	}

	// Live accuracy over the labelled jobs, and open-set rejection quality
	// over the injected unknowns (when the model carries a calibration).
	correct, scored := 0, 0
	var tally drift.RejectionTally
	for k := 0; k < c.jobs; k++ {
		pred, ok := monitor.Prediction(k)
		if !ok {
			continue
		}
		tally.Add(mix.IsUnknown(k), pred.Open != nil && pred.Open.Rejected)
		if mix.IsUnknown(k) {
			continue
		}
		scored++
		if telemetry.Class(pred.Class) == mix.Sources[k%len(mix.Sources)].Class {
			correct++
		}
	}
	if scored > 0 {
		fmt.Printf("  live accuracy:      %.1f%% (%d/%d labelled jobs classified)\n",
			100*float64(correct)/float64(scored), scored, mix.IDJobs)
	}
	if st := monitor.DriftStats(); st.Enabled {
		fmt.Printf("  drift score:        %.3f (max per-sensor PSI, %d unknown verdicts)\n", st.Score, st.Unknowns)
		fmt.Print(tally.Report())
	} else if mix.UnknownJobs > 0 {
		fmt.Printf("  note: %d out-of-distribution jobs injected but the model carries no drift calibration (train with wcctrain -drift)\n", mix.UnknownJobs)
	}
	return nil
}

// percentile returns the q-quantile of the observed durations (nearest-rank).
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}
