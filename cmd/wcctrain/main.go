// Command wcctrain trains a single baseline with explicit hyper-parameters
// and prints accuracy plus a per-class report — the interactive counterpart
// to wccbench's full table runs.
//
// Usage:
//
//	wcctrain -model rf -features cov -dataset 60-middle-1 -trees 100
//	wcctrain -model svm -features pca -pca-dim 64 -C 10
//	wcctrain -model xgb -features cov -rounds 40 -gamma 0.5
//	wcctrain -model lstm -hidden 32 -epochs 10 -stride 10
//
// With -o the fitted estimator is persisted as a versioned .wcc artifact
// bundling the model, its preprocessing statistics (scaler, and PCA when
// -features pca), and training provenance; wccserve -model serves it and
// wccinfo inspects it:
//
//	wcctrain -model rf -features cov -trees 100 -o rf-cov.wcc
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drift"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/preprocess"
	"repro/internal/svm"
	"repro/internal/telemetry"
	"repro/internal/xgb"
)

func main() {
	var (
		model      = flag.String("model", "rf", "rf, svm, linear-svm, xgb, lstm, lstm2, cnnlstm")
		features   = flag.String("features", "cov", "cov or pca (classical models only)")
		dsName     = flag.String("dataset", "60-middle-1", "challenge dataset name")
		scale      = flag.Float64("scale", 0.15, "generation scale")
		seed       = flag.Int64("seed", 1, "seed")
		maxTrain   = flag.Int("max-train", 800, "training trials cap (0 = all)")
		maxTest    = flag.Int("max-test", 400, "test trials cap (0 = all)")
		report     = flag.Bool("report", false, "print the per-class report")
		out        = flag.String("o", "", "write the fitted model as a .wcc artifact to this path")
		driftOn    = flag.Bool("drift", true, "with -o and cov features: calibrate and persist the open-set drift section (unknown-workload rejection threshold + input reference)")
		driftQ     = flag.Float64("drift-quantile", drift.DefaultQuantile, "calibration quantile of the probability rejection rules (confidence, margin, energy) over held-out in-distribution scores")
		driftFeatQ = flag.Float64("drift-feat-quantile", drift.DefaultFeatQuantile, "calibration quantile of the feature-space distance gate — the rule that carries most rejection recall; raise it to trade recall for fewer in-distribution false flags")

		pcaDim = flag.Int("pca-dim", 64, "PCA dimensions")
		cVal   = flag.Float64("C", 1, "SVM regularisation")
		trees  = flag.Int("trees", 100, "forest size")
		rounds = flag.Int("rounds", 40, "boosting rounds")
		gamma  = flag.Float64("gamma", 0, "XGBoost gamma")
		lambda = flag.Float64("lambda", 1, "XGBoost lambda")
		alpha  = flag.Float64("alpha", 0, "XGBoost alpha")

		hidden = flag.Int("hidden", 32, "LSTM hidden size")
		epochs = flag.Int("epochs", 10, "training epochs")
		stride = flag.Int("stride", 10, "sequence downsampling stride")

		families = flag.String("families", "", "offline continual learning: JSON family bundle from GET /v1/adapt/families; widens -base with one class per family and writes the candidate to -o")
		baseArt  = flag.String("base", "", "with -families: the serving .wcc artifact the candidate extends (provenance and scaler source)")
	)
	flag.Parse()

	if *families != "" {
		if err := runFamilies(*families, *baseArt, *out, *maxTrain, *maxTest, *trees, *driftQ, *driftFeatQ); err != nil {
			fmt.Fprintln(os.Stderr, "wcctrain:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(opts{
		model: *model, features: *features, dsName: *dsName, scale: *scale,
		seed: *seed, maxTrain: *maxTrain, maxTest: *maxTest, report: *report, out: *out,
		driftOn: *driftOn, driftQ: *driftQ, driftFeatQ: *driftFeatQ,
		pcaDim: *pcaDim, c: *cVal, trees: *trees, rounds: *rounds,
		gamma: *gamma, lambda: *lambda, alpha: *alpha,
		hidden: *hidden, epochs: *epochs, stride: *stride,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "wcctrain:", err)
		os.Exit(1)
	}
}

// runFamilies is the offline half of the continual-learning flywheel: it
// rebuilds exactly the candidate the in-process flywheel would, from a
// family bundle exported on GET /v1/adapt/families — same provenance
// regeneration, same serving scaler reused verbatim, same
// adapt.BuildCandidateArtifact. The result drops onto the watched model
// path (or cluster distribution) like any other artifact.
func runFamilies(famPath, basePath, out string, maxTrain, maxTest, trees int, driftQ, driftFeatQ float64) error {
	if basePath == "" {
		return fmt.Errorf("-families needs -base: the serving artifact the candidate extends")
	}
	if out == "" {
		return fmt.Errorf("-families needs -o: where to write the candidate artifact")
	}
	f, err := os.Open(famPath)
	if err != nil {
		return err
	}
	fams, err := adapt.DecodeFamilies(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(fams) == 0 {
		return fmt.Errorf("family bundle %s holds no families", famPath)
	}
	base, err := artifact.Load(basePath)
	if err != nil {
		return err
	}
	fmt.Printf("widening %d-class %s base with %d famil(ies) from %s\n",
		len(base.Meta.ClassNames), base.Meta.Kind, len(fams), famPath)
	trainer := &adapt.ProvenanceTrainer{
		Meta:         base.Meta,
		Scaler:       base.Scaler,
		MaxTrain:     maxTrain,
		MaxTest:      maxTest,
		Trees:        trees,
		Quantile:     driftQ,
		FeatQuantile: driftFeatQ,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	cand, err := trainer.Train(fams)
	if err != nil {
		return err
	}
	if err := artifact.Save(out, cand); err != nil {
		return err
	}
	fmt.Printf("saved %d-class candidate (%d novel, base accuracy %.2f%%) to %s\n",
		len(cand.Meta.ClassNames), cand.Meta.NovelClasses, cand.Meta.Accuracy*100, out)
	return nil
}

type opts struct {
	model, features, dsName string
	scale                   float64
	seed                    int64
	maxTrain, maxTest       int
	report                  bool
	out                     string
	driftOn                 bool
	driftQ, driftFeatQ      float64
	pcaDim, trees, rounds   int
	c, gamma, lambda, alpha float64
	hidden, epochs, stride  int
}

func run(o opts) error {
	spec, ok := dataset.SpecByName(o.dsName)
	if !ok {
		return fmt.Errorf("unknown dataset %q", o.dsName)
	}
	sim, err := telemetry.NewSimulator(telemetry.Config{Seed: o.seed, Scale: o.scale, GapRate: 1})
	if err != nil {
		return err
	}
	p := core.PresetScaled()
	p.Seed = o.seed
	p.MaxTrain = o.maxTrain
	p.MaxTest = o.maxTest
	ch, err := core.BuildDataset(sim, spec, p)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d train / %d test trials\n", o.dsName, ch.Train.Len(), ch.Test.Len())
	numClasses := int(telemetry.NumClasses)

	var pred []int
	var testY []int

	// Artifact ingredients, filled in by the model branches below.
	var trained any
	var scaler *preprocess.StandardScaler
	var pca *preprocess.PCA
	var covFP *core.FeaturePair // cov features, kept for drift calibration
	featuresKind := o.features
	window, sensors := ch.Train.X.T, ch.Train.X.C

	switch o.model {
	case "rf", "svm", "linear-svm", "xgb":
		var fp *core.FeaturePair
		switch o.features {
		case "cov":
			fp, err = core.CovFeatures(ch)
			covFP = fp
		case "pca":
			fp, err = core.PCAFeatures(ch, o.pcaDim, o.seed)
		default:
			return fmt.Errorf("unknown features %q", o.features)
		}
		if err != nil {
			return err
		}
		testY = fp.TestY
		scaler = fp.Scaler
		pca = fp.PCA
		switch o.model {
		case "rf":
			m := forest.New(forest.Config{NumTrees: o.trees, Bootstrap: true, Seed: o.seed})
			if err := m.Fit(fp.TrainX, fp.TrainY, numClasses); err != nil {
				return err
			}
			if pred, err = m.Predict(fp.TestX); err != nil {
				return err
			}
			trained = m
		case "svm":
			m := svm.New(svm.Config{C: o.c, Seed: o.seed})
			if err := m.Fit(fp.TrainX, fp.TrainY); err != nil {
				return err
			}
			if pred, err = m.Predict(fp.TestX); err != nil {
				return err
			}
			trained = m
		case "linear-svm":
			m := svm.NewLinear(svm.LinearConfig{C: o.c, Epochs: 100, Tol: 1e-4, Seed: o.seed})
			if err := m.Fit(fp.TrainX, fp.TrainY, numClasses); err != nil {
				return err
			}
			if pred, err = m.Predict(fp.TestX); err != nil {
				return err
			}
			trained = m
		case "xgb":
			m := xgb.New(xgb.Config{
				NumRounds: o.rounds, LearningRate: 0.3, MaxDepth: 6,
				Gamma: o.gamma, Lambda: o.lambda, Alpha: o.alpha,
				MinChildWeight: 1, Subsample: 1, Seed: o.seed,
			})
			if err := m.Fit(fp.TrainX, fp.TrainY, numClasses, nil, nil); err != nil {
				return err
			}
			if pred, err = m.Predict(fp.TestX); err != nil {
				return err
			}
			trained = m
			names := core.CovFeatureNames()
			if o.features == "cov" {
				fmt.Println("top-3 features by gain importance:")
				for i, f := range m.TopFeatures(xgb.ImportanceGain, 3) {
					fmt.Printf("  %d. %s\n", i+1, names[f])
				}
			}
		}

	case "lstm", "lstm2", "cnnlstm":
		trainT := ch.Train.X.Downsample(o.stride)
		testT := ch.Test.X.Downsample(o.stride)
		testY = ch.Test.Y
		// Sequence models consume raw (downsampled) windows, no scaler/PCA.
		featuresKind = "sequence"
		window, sensors = trainT.T, trainT.C
		var m nn.SequenceClassifier
		switch o.model {
		case "lstm":
			m, err = nn.NewBiLSTMClassifier(trainT.C, o.hidden, trainT.T, numClasses, 1, o.seed)
		case "lstm2":
			m, err = nn.NewBiLSTMClassifier(trainT.C, o.hidden, trainT.T, numClasses, 2, o.seed)
		case "cnnlstm":
			m, err = nn.NewCNNLSTMClassifier(trainT.C, trainT.T, numClasses, nn.CNNLSTMOptions{Hidden: o.hidden, Seed: o.seed})
		}
		if err != nil {
			return err
		}
		cfg := nn.DefaultTrainConfig()
		cfg.Epochs = o.epochs
		cfg.Seed = o.seed
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		if _, err := nn.Train(m, trainT, ch.Train.Y, cfg); err != nil {
			return err
		}
		if pred, err = nn.Predict(m, testT, nil, cfg.BatchSize); err != nil {
			return err
		}
		trained = m

	default:
		return fmt.Errorf("unknown model %q", o.model)
	}

	acc, err := metrics.Accuracy(testY, pred)
	if err != nil {
		return err
	}
	fmt.Printf("test accuracy: %.2f%%\n", acc*100)

	// Open-set drift calibration for servable (cov-feature, probabilistic)
	// models: rejection threshold on the held-out test probabilities, input
	// reference on the raw training windows.
	var cal *drift.Calibration
	if o.out != "" && o.driftOn && covFP != nil {
		if cls, ok := trained.(interface {
			PredictProba(x *mat.Matrix) (*mat.Matrix, error)
		}); ok {
			probs, err := cls.PredictProba(covFP.TestX)
			if err != nil {
				return err
			}
			cal, err = drift.Fit(drift.FitInput{
				Probs:           probs,
				TrainFeatures:   covFP.TrainX,
				HeldOutFeatures: covFP.TestX,
				RawSamples:      core.RawSensorSamples(ch.Train.X),
			}, drift.Options{Quantile: o.driftQ, FeatQuantile: o.driftFeatQ})
			if err != nil {
				return err
			}
			fmt.Printf("calibrated open-set rejection at quantile %.3g (min conf %.3f, min margin %.3f, max energy %.3f; feature gate at quantile %.3g, max distance %.3f)\n",
				cal.Threshold.Quantile, cal.Threshold.MinConf, cal.Threshold.MinMargin,
				cal.Threshold.MaxEnergy, o.driftFeatQ, cal.Threshold.MaxFeatDist)
		}
	}

	if o.out != "" {
		classNames := make([]string, numClasses)
		for _, c := range telemetry.AllClasses() {
			classNames[int(c)] = c.Name()
		}
		a := &artifact.Artifact{
			Meta: artifact.Metadata{
				ClassNames:  classNames,
				Features:    featuresKind,
				Window:      window,
				Sensors:     sensors,
				Dataset:     o.dsName,
				Scale:       o.scale,
				Seed:        o.seed,
				Accuracy:    acc,
				CreatedUnix: time.Now().Unix(),
				Tool:        "wcctrain",
			},
			Scaler: scaler,
			PCA:    pca,
			Drift:  cal,
			Model:  trained,
		}
		if err := artifact.Save(o.out, a); err != nil {
			return err
		}
		fmt.Printf("saved %s artifact to %s\n", a.Meta.Kind, o.out)
	}

	if o.report {
		names := make([]string, numClasses)
		for _, c := range telemetry.AllClasses() {
			names[int(c)] = c.Name()
		}
		rep, err := metrics.Report(testY, pred, numClasses, names)
		if err != nil {
			return err
		}
		fmt.Println(rep)
	}
	return nil
}
