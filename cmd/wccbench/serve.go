package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/server"
	"repro/internal/wire"
)

// runServeBench (-table serve) measures end-to-end ingest throughput
// through the real HTTP serving layer once per framing — NDJSON lines and
// the length-prefixed binary records of internal/wire — against an
// in-process fleet with a synthetic model. It is a quick serving-plane
// health check runnable anywhere; the regression-gated numbers live in the
// repo's go-test benchmarks (see BENCHMARKS.md).
func runServeBench() error {
	const (
		window  = 24
		sensors = 7
		jobs    = 32
		batch   = 256
		rounds  = 300
	)
	rng := rand.New(rand.NewSource(1))
	train := mat.New(64, window*sensors)
	for i := range train.Data {
		train.Data[i] = rng.NormFloat64()*10 + 30
	}
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(train); err != nil {
		return err
	}
	dim := preprocess.CovarianceDim(sensors)
	x := mat.New(400, dim)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(8)
	}
	model := forest.New(forest.Config{NumTrees: 25, Bootstrap: true, Seed: 3})
	if err := model.Fit(x, y, 8); err != nil {
		return err
	}

	framings := []struct{ name, contentType string }{
		{"ndjson", "application/x-ndjson"},
		{"binary", wire.IngestContentType},
	}
	sample := make([]float64, sensors)
	for _, fr := range framings {
		m, err := fleet.New(fleet.Config{Window: window, Sensors: sensors, Scaler: &scaler, Model: model})
		if err != nil {
			return err
		}
		srv, err := server.New(server.Config{Monitor: m, TickEvery: 5 * time.Millisecond, QueueDepth: 512, Workers: 4})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())

		// One identical batch per framing, replayed round after round; the
		// sample bits match across framings, so both fleets do the same
		// downstream work and the delta is pure parse-and-frame cost.
		bodyRNG := rand.New(rand.NewSource(2))
		var body []byte
		var lines bytes.Buffer
		for i := 0; i < batch; i++ {
			for c := range sample {
				sample[c] = bodyRNG.NormFloat64()*10 + 30
			}
			job := i % jobs
			if fr.contentType == wire.IngestContentType {
				body = wire.AppendIngestRecord(body, int64(job), sample)
			} else {
				line, err := json.Marshal(struct {
					Job    int       `json:"job"`
					Values []float64 `json:"values"`
				}{job, sample})
				if err != nil {
					return err
				}
				lines.Write(line)
				lines.WriteByte('\n')
			}
		}
		if fr.contentType != wire.IngestContentType {
			body = lines.Bytes()
		}

		client := &http.Client{}
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			resp, err := client.Post(ts.URL+"/v1/ingest", fr.contentType, bytes.NewReader(body))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s ingest round %d: status %d", fr.name, r, resp.StatusCode)
			}
		}
		elapsed := time.Since(t0)
		fmt.Printf("  %-6s  %9.0f samples/s  (%d bytes/batch, %d samples in %s)\n",
			fr.name, float64(rounds*batch)/elapsed.Seconds(), len(body), rounds*batch,
			elapsed.Round(time.Millisecond))

		ts.Close()
		if err := srv.Close(); err != nil {
			return err
		}
	}
	return nil
}
