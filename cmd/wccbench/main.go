// Command wccbench regenerates the paper's tables from the simulated
// labelled dataset.
//
// Usage:
//
//	wccbench -preset scaled -table all
//	wccbench -preset smoke -table 5
//	wccbench -preset scaled -table ablations -v
//
// Tables: 1, 2 (prints II and III), 4, 5, 6, 7 (prints VII-IX), xgb,
// ablations, all. Beyond the paper tables, -table serve runs a
// serving-plane ingest throughput check over both wire framings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	preset := flag.String("preset", "scaled", "experiment preset: smoke, scaled or full")
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 4, 5, 6, 7, xgb, fused, ablations, all — or serve for the ingest-framing throughput check")
	verbose := flag.Bool("v", false, "log per-cell progress")
	rnnEpochs := flag.Int("rnn-epochs", 0, "override the preset's RNN epoch count")
	rnnMaxTrain := flag.Int("rnn-max-train", 0, "override the preset's RNN training-trials cap")
	rnnStride := flag.Int("rnn-stride", 0, "override the preset's RNN sequence stride")
	flag.Parse()

	if err := run(*preset, *table, *verbose, *rnnEpochs, *rnnMaxTrain, *rnnStride); err != nil {
		fmt.Fprintln(os.Stderr, "wccbench:", err)
		os.Exit(1)
	}
}

func run(presetName, table string, verbose bool, rnnEpochs, rnnMaxTrain, rnnStride int) error {
	p, err := core.PresetByName(presetName)
	if err != nil {
		return err
	}
	if rnnEpochs > 0 {
		p.RNN.Epochs = rnnEpochs
	}
	if rnnMaxTrain > 0 {
		p.RNN.MaxTrain = rnnMaxTrain
	}
	if rnnStride > 0 {
		p.RNN.Stride = rnnStride
	}
	var logf func(string, ...any)
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	// The serving throughput check needs no simulator or paper tables;
	// handle it before the heavyweight setup.
	if table == "serve" {
		fmt.Println("serving-plane ingest throughput (in-process HTTP, both framings):")
		if err := runServeBench(); err != nil {
			return err
		}
		return nil
	}

	sim, err := core.NewSimulator(p)
	if err != nil {
		return err
	}
	fmt.Printf("preset %s: %d jobs, %d GPU series (paper: 3,430 jobs, >17k series)\n\n",
		p.Name, len(sim.Jobs()), sim.TotalGPUSeries())

	want := func(name string) bool { return table == "all" || table == name }
	start := time.Now()

	if want("1") {
		fmt.Println(core.FormatTable1(core.RunTable1(sim)))
	}
	if want("2") || table == "3" {
		fmt.Println(core.FormatTables2And3())
	}
	if want("4") {
		rows, err := core.RunTable4(sim, p.Seed)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable4(rows))
	}
	if want("7") || table == "8" || table == "9" {
		fmt.Println(core.FormatTables789(core.RunTables789(sim)))
	}
	if want("5") {
		res, err := core.RunTable5(sim, p, logf)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable5(res))
	}
	if want("xgb") {
		res, err := core.RunXGBoost(sim, p, logf)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatXGB(res))
	}
	if want("6") {
		res, err := core.RunTable6(sim, p, logf)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable6(res))
	}
	if want("fused") {
		res, err := core.RunFusedImportance(sim, p, logf)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatFused(res))
	}
	if want("ablations") {
		sp, err := core.RunStartPhaseAblation(p)
		if err != nil {
			return err
		}
		emb, err := core.RunEmbeddingAblation(sim, p)
		if err != nil {
			return err
		}
		eig, err := core.RunEigensolverAblation(sim, p)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatAblations(sp, emb, eig))
	}

	if !strings.ContainsAny(table, "123456789") && table != "all" && table != "xgb" &&
		table != "fused" && table != "ablations" {
		return fmt.Errorf("unknown table %q", table)
	}
	fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
