// Package repro is the public facade of the MIT Supercloud Workload
// Classification Challenge reproduction (IPDPS-W 2022, arXiv:2204.05839).
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// system inventory); this package re-exports the handful of entry points a
// downstream user needs:
//
//   - GenerateDataset: simulate the labelled dataset and extract one of the
//     seven Table IV challenge datasets.
//   - TrainRFCov: the paper's best baseline (random forest on covariance
//     features), fitted and evaluated in one call.
//   - RunExperiment: regenerate a paper table by name.
//   - NewFleet: a fleet monitor serving the trained model over live
//     telemetry from many concurrent jobs (cmd/wccserve drives it).
//   - NewShardedFleet: the same fleet partitioned across independent
//     monitor shards with per-shard tick loops — the serving core that
//     scales with the machine's cores instead of one lock.
//   - NewServer: the HTTP serving layer over either fleet — NDJSON
//     batch ingest with bounded-queue backpressure, prediction reads,
//     health and Prometheus-style metrics (shard-labelled over a sharded
//     core), graceful drain (wccserve -listen serves it, cmd/wccload
//     load-tests it; docs/API.md is the request/response reference).
//   - Open-set serving: TrainRFCov also calibrates a drift.Calibration
//     (rejection threshold + input reference histograms), so every fleet
//     built from the result flags unknown workloads, and DriftStats /
//     GET /v1/drift report input drift against the training distribution.
//   - SaveModel / LoadModel: persist a trained RF-Cov pipeline as a
//     versioned .wcc artifact (model + scaler + drift calibration +
//     provenance) and restore it,
//     so serving starts in milliseconds instead of a training run;
//     LoadedModel.NewFleet builds the serving monitor straight from the
//     artifact, and fleet.Monitor.SwapClassifier rolls a newer artifact
//     into a live fleet with zero downtime.
//
// For anything beyond these — other baselines, custom grids, npz interop —
// import the internal packages directly; they are documented and tested as
// the real API surface.
package repro

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drift"
	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/preprocess"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Dataset bundles a built challenge dataset with its generation settings.
type Dataset struct {
	Challenge *dataset.Challenge
	Sim       *telemetry.Simulator
	// Name, Scale and Seed record how the dataset was generated; saved
	// artifacts carry them as training provenance.
	Name  string
	Scale float64
	Seed  int64
}

// GenerateDataset simulates the labelled dataset at the given scale
// (0 < scale ≤ 1, where 1 reproduces the paper's 3,430 jobs) and extracts
// the named challenge dataset ("60-start-1", "60-middle-1", "60-random-1"
// … "60-random-5") with the challenge's 80/20 split.
func GenerateDataset(name string, scale float64, seed int64) (*Dataset, error) {
	spec, ok := dataset.SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown dataset %q", name)
	}
	sim, err := telemetry.NewSimulator(telemetry.Config{Seed: seed, Scale: scale, GapRate: 1})
	if err != nil {
		return nil, err
	}
	opts := dataset.DefaultBuildOptions()
	opts.Seed = seed
	ch, err := dataset.Build(sim, spec, opts)
	if err != nil {
		return nil, err
	}
	return &Dataset{Challenge: ch, Sim: sim, Name: name, Scale: scale, Seed: seed}, nil
}

// RFCovResult reports a TrainRFCov run.
type RFCovResult struct {
	Accuracy   float64
	Confusion  *metrics.ConfusionMatrix
	Model      *forest.Classifier
	ClassNames []string
	// Scaler holds the training-set statistics the features were
	// standardised with; serving paths reuse it so live windows are
	// preprocessed exactly as the model was trained.
	Scaler *preprocess.StandardScaler
	// Drift is the open-set calibration fitted alongside the model: a
	// rejection threshold calibrated on the held-out test split's
	// predicted probabilities, and input reference histograms over the
	// raw training windows. Serving fleets built from this result flag
	// unknown workloads and report input drift (see internal/drift).
	Drift *drift.Calibration
}

// TrainRFCov runs the paper's strongest baseline end to end: standardise,
// covariance-embed, fit a random forest, and score the held-out test split.
func TrainRFCov(ds *Dataset, trees int, seed int64) (*RFCovResult, error) {
	fp, err := core.CovFeatures(ds.Challenge)
	if err != nil {
		return nil, err
	}
	f := forest.New(forest.Config{NumTrees: trees, Bootstrap: true, Seed: seed})
	if err := f.Fit(fp.TrainX, fp.TrainY, int(telemetry.NumClasses)); err != nil {
		return nil, err
	}
	// One batched inference pass serves both the accuracy report and the
	// drift calibration below: Predict is the argmax of these very rows
	// (bit-identical per forest's contract), so deriving it avoids scoring
	// the test split twice.
	probs, err := f.PredictProbaBatch(fp.TestX)
	if err != nil {
		return nil, err
	}
	pred := make([]int, probs.Rows)
	for i := range pred {
		pred[i] = mat.ArgMax(probs.Row(i))
	}
	acc, err := metrics.Accuracy(fp.TestY, pred)
	if err != nil {
		return nil, err
	}
	cm, err := metrics.NewConfusionMatrix(fp.TestY, pred, int(telemetry.NumClasses))
	if err != nil {
		return nil, err
	}
	names := make([]string, telemetry.NumClasses)
	for _, c := range telemetry.AllClasses() {
		names[int(c)] = c.Name()
	}
	// Open-set calibration: the rejection threshold comes from the held-out
	// test probabilities and feature distances, the feature statistics from
	// the training embeddings, and the drift reference from the raw
	// training windows.
	cal, err := drift.Fit(drift.FitInput{
		Probs:           probs,
		TrainFeatures:   fp.TrainX,
		HeldOutFeatures: fp.TestX,
		RawSamples:      core.RawSensorSamples(ds.Challenge.Train.X),
	}, drift.Options{})
	if err != nil {
		return nil, err
	}
	return &RFCovResult{Accuracy: acc, Confusion: cm, Model: f, ClassNames: names, Scaler: fp.Scaler, Drift: cal}, nil
}

// NewFleet builds a fleet monitor that serves the trained model over live
// telemetry shaped like the dataset's windows (540×7 for the challenge
// datasets): jobs stream samples through Ingest from any number of
// goroutines, and each Tick classifies every changed window in one batched
// model call. The live windows are standardised with the very scaler the
// offline pipeline fitted (res.Scaler), so fleet predictions match what
// TrainRFCov's model would say about the same window offline. shards ≤ 0
// selects the default shard count.
func NewFleet(ds *Dataset, res *RFCovResult, shards int) (*fleet.Monitor, error) {
	return fleet.New(fleet.Config{
		Window:  ds.Challenge.Train.X.T,
		Sensors: ds.Challenge.Train.X.C,
		Scaler:  res.Scaler,
		Model:   res.Model,
		Shards:  shards,
		Drift:   res.Drift,
	})
}

// NewShardedFleet builds the sharded serving core over the trained model:
// jobs are hash-routed to independent monitor shards (shards ≤ 0 selects
// GOMAXPROCS) that tick on independent goroutines, classifier hot-swaps
// install atomically on every shard, and predictions stay bit-identical to
// a single NewFleet monitor fed the same streams — sharding changes
// throughput, not predictions.
func NewShardedFleet(ds *Dataset, res *RFCovResult, shards int) (*shard.Core, error) {
	return shard.New(shard.Config{
		Window:  ds.Challenge.Train.X.T,
		Sensors: ds.Challenge.Train.X.C,
		Scaler:  res.Scaler,
		Model:   res.Model,
		Shards:  shards,
		Drift:   res.Drift,
	})
}

// NewServer wraps a fleet monitor in the HTTP serving layer: NDJSON batch
// ingest with per-request error accounting and bounded-queue backpressure
// (429 + Retry-After), per-job prediction reads and a fleet snapshot, job
// lifecycle (DELETE ends a job; idle eviction is configurable on the
// underlying server.Config), /healthz, and Prometheus-style /metrics.
// Mount the returned server's Handler on an http.Server and Close it after
// the listener shuts down — the final inference tick flushes pending
// windows, so a drained stream's last samples still produce predictions.
// classNames optionally labels predictions; tickEvery ≤ 0 selects the
// default inference cadence. m is a *fleet.Monitor or a *shard.Core — over
// a sharded core the layer runs one tick loop per shard and labels
// /metrics by shard. For the full knob set import internal/server
// directly.
func NewServer(m server.Monitor, classNames []string, tickEvery time.Duration) (*server.Server, error) {
	return server.New(server.Config{Monitor: m, ClassNames: classNames, TickEvery: tickEvery})
}

// SaveModel writes a trained RF-Cov pipeline to path as a versioned .wcc
// artifact: the fitted forest, the scaler its features were standardised
// with, and training provenance (dataset, scale, seed, class names, test
// accuracy). The write is atomic, so a serving process polling the path for
// hot-swaps never observes a half-written model.
func SaveModel(path string, ds *Dataset, res *RFCovResult) error {
	return artifact.Save(path, &artifact.Artifact{
		Meta: artifact.Metadata{
			ClassNames:  res.ClassNames,
			Features:    "cov",
			Window:      ds.Challenge.Train.X.T,
			Sensors:     ds.Challenge.Train.X.C,
			Dataset:     ds.Name,
			Scale:       ds.Scale,
			Seed:        ds.Seed,
			Accuracy:    res.Accuracy,
			CreatedUnix: time.Now().Unix(),
			Tool:        "repro.SaveModel",
		},
		Scaler: res.Scaler,
		Drift:  res.Drift,
		Model:  res.Model,
	})
}

// LoadedModel is a deserialised serving artifact.
type LoadedModel struct {
	// Artifact holds the metadata, scaler and model as decoded.
	Artifact *artifact.Artifact
}

// LoadModel reads a .wcc artifact and validates it is servable over live
// telemetry: a covariance-feature model implementing the streaming
// classifier contract, bundled with its scaler.
func LoadModel(path string) (*LoadedModel, error) {
	a, err := artifact.Load(path)
	if err != nil {
		return nil, err
	}
	if a.Meta.Features != "cov" {
		return nil, fmt.Errorf("repro: artifact has %q features; live serving needs a covariance-feature model", a.Meta.Features)
	}
	if a.Scaler == nil {
		return nil, errors.New("repro: artifact carries no scaler; live windows cannot be standardised")
	}
	if a.Meta.Window < 2 || a.Meta.Sensors < 1 {
		return nil, fmt.Errorf("repro: artifact window shape %dx%d is invalid", a.Meta.Window, a.Meta.Sensors)
	}
	if _, ok := a.Model.(stream.Classifier); !ok {
		return nil, fmt.Errorf("repro: %s models cannot serve streaming windows", a.Meta.Kind)
	}
	return &LoadedModel{Artifact: a}, nil
}

// Classifier returns the artifact's model as a streaming classifier.
func (lm *LoadedModel) Classifier() stream.Classifier {
	return lm.Artifact.Model.(stream.Classifier)
}

// NewFleet builds a fleet monitor serving the loaded artifact, the
// zero-training counterpart of NewFleet: window shape and scaler come from
// the artifact, so the monitor classifies live telemetry exactly as the
// training-time pipeline would. shards ≤ 0 selects the default shard count.
func (lm *LoadedModel) NewFleet(shards int) (*fleet.Monitor, error) {
	return fleet.New(fleet.Config{
		Window:  lm.Artifact.Meta.Window,
		Sensors: lm.Artifact.Meta.Sensors,
		Scaler:  lm.Artifact.Scaler,
		Model:   lm.Classifier(),
		Shards:  shards,
		Drift:   lm.Artifact.Drift,
	})
}

// NewShardedFleet builds the sharded serving core straight from the
// artifact, the zero-training counterpart of NewShardedFleet: window
// shape and scaler come from the artifact, shards ≤ 0 selects GOMAXPROCS.
func (lm *LoadedModel) NewShardedFleet(shards int) (*shard.Core, error) {
	return shard.New(shard.Config{
		Window:  lm.Artifact.Meta.Window,
		Sensors: lm.Artifact.Meta.Sensors,
		Scaler:  lm.Artifact.Scaler,
		Model:   lm.Classifier(),
		Shards:  shards,
		Drift:   lm.Artifact.Drift,
	})
}

// RunExperiment regenerates a paper table by name ("1", "2", "4", "5", "6",
// "7", "xgb") under the named preset ("smoke", "scaled", "full") and
// returns the rendered table text.
func RunExperiment(table, preset string) (string, error) {
	p, err := core.PresetByName(preset)
	if err != nil {
		return "", err
	}
	sim, err := core.NewSimulator(p)
	if err != nil {
		return "", err
	}
	switch table {
	case "1":
		return core.FormatTable1(core.RunTable1(sim)), nil
	case "2", "3":
		return core.FormatTables2And3(), nil
	case "4":
		rows, err := core.RunTable4(sim, p.Seed)
		if err != nil {
			return "", err
		}
		return core.FormatTable4(rows), nil
	case "5":
		res, err := core.RunTable5(sim, p, nil)
		if err != nil {
			return "", err
		}
		return core.FormatTable5(res), nil
	case "6":
		res, err := core.RunTable6(sim, p, nil)
		if err != nil {
			return "", err
		}
		return core.FormatTable6(res), nil
	case "7", "8", "9":
		return core.FormatTables789(core.RunTables789(sim)), nil
	case "xgb":
		res, err := core.RunXGBoost(sim, p, nil)
		if err != nil {
			return "", err
		}
		return core.FormatXGB(res), nil
	}
	return "", fmt.Errorf("repro: unknown table %q", table)
}
