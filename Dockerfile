# Build the serving binaries and bake a small smoke model, so a container
# fleet (see docker-compose.yml) boots with zero external state. The
# module vendors its only dependency, so the build never touches the
# network after the base image pull.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY . .
RUN go build -mod=vendor -o /out/wccserve ./cmd/wccserve \
 && go build -mod=vendor -o /out/wccload ./cmd/wccload \
 && go build -mod=vendor -o /out/wcctrain ./cmd/wcctrain
# A deterministic small artifact: every node of a compose fleet boots the
# same model, so the cluster starts converged (identical gen-0 classifiers).
RUN mkdir -p /models \
 && /out/wcctrain -model rf -trees 12 -scale 0.05 -max-train 400 -max-test 150 -o /models/smoke.wcc

FROM alpine:3.20
COPY --from=build /out/ /usr/local/bin/
COPY --from=build /models/ /models/
EXPOSE 8077
ENTRYPOINT ["wccserve"]
CMD ["-model", "/models/smoke.wcc", "-listen", ":8077"]
